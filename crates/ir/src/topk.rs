//! Streaming top-k belief evaluation with threshold pruning.
//!
//! The materialise-then-sort retrieval path computes a belief for *every*
//! document, groups, sorts, and only then keeps the best k — a full pass of
//! floating-point work for results that are mostly thrown away. This module
//! is the score-at-a-time alternative the serving layer fuses into plans:
//!
//! * a [`TopKAccumulator`] — a bounded heap that keeps the k best
//!   `(oid, score)` pairs (score descending, ties broken by ascending oid,
//!   exactly like the facade's sort) and exposes the current admission
//!   threshold;
//! * [`topk_beliefs`] — a document-at-a-time merge over the query terms'
//!   postings that scores each candidate **in the same floating-point
//!   order as the materialise path** (so results are bit-identical) and
//!   skips documents whose per-term belief upper bounds
//!   ([`BeliefParams::belief_bound`]) prove they cannot enter the top k;
//! * fragment-parallel accumulation: the document-id space splits into
//!   [`monet::fragment::bounds`] spans, each span fills its own
//!   accumulator on a scoped thread, and the per-fragment heaps merge at
//!   the end. Per-document sums never cross a fragment boundary, so the
//!   parallel result is bit-identical to serial at every degree.

use crate::belief::BeliefParams;
use crate::index::{InvertedIndex, Posting};
use monet::fxhash::FxHashSet;
use monet::Oid;
use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Safety margin added to the pruning bound: the bound is sound in exact
/// arithmetic, and the margin dwarfs the worst-case floating-point rounding
/// of the few dozen operations behind each score.
const PRUNE_MARGIN: f64 = 1e-9;

/// A ranked entry; `Ord` is "better": greater score first, ties broken by
/// the smaller oid (the facade's ranking order).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    oid: Oid,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.total_cmp(&other.score).then_with(|| other.oid.cmp(&self.oid))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded min-heap keeping the k best `(oid, score)` pairs seen so far.
#[derive(Debug, Clone, Default)]
pub struct TopKAccumulator {
    k: usize,
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopKAccumulator {
    /// Create an accumulator with capacity `k`.
    pub fn new(k: usize) -> Self {
        TopKAccumulator { k, heap: BinaryHeap::with_capacity(k.min(1024) + 1) }
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when the accumulator holds k entries — from then on a candidate
    /// must beat [`threshold`](Self::threshold) to enter.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The admission threshold: the k-th best score so far. `-∞` while the
    /// accumulator is not yet full (everything is admitted), `+∞` for k = 0
    /// (nothing ever is). A candidate with an upper bound strictly below
    /// this value can be skipped without scoring.
    pub fn threshold(&self) -> f64 {
        if self.k == 0 {
            return f64::INFINITY;
        }
        if self.heap.len() < self.k {
            return f64::NEG_INFINITY;
        }
        self.heap.peek().map_or(f64::NEG_INFINITY, |Reverse(e)| e.score)
    }

    /// Offer a candidate; returns true if it entered the top k.
    pub fn push(&mut self, oid: Oid, score: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        let e = Entry { score, oid };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(e));
            return true;
        }
        match self.heap.peek() {
            Some(Reverse(worst)) if e > *worst => {
                self.heap.pop();
                self.heap.push(Reverse(e));
                true
            }
            _ => false,
        }
    }

    /// Fold another accumulator's entries in (the per-fragment merge).
    pub fn merge(&mut self, other: TopKAccumulator) {
        for Reverse(e) in other.heap {
            self.push(e.oid, e.score);
        }
    }

    /// Consume the accumulator, returning the entries in rank order
    /// (score descending, ties by ascending oid).
    pub fn into_ranked(self) -> Vec<(Oid, f64)> {
        self.heap.into_sorted_vec().into_iter().map(|Reverse(e)| (e.oid, e.score)).collect()
    }
}

/// What a [`topk_beliefs`] run did.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKOutcome {
    /// The k best `(oid, score)` pairs in rank order.
    pub hits: Vec<(Oid, f64)>,
    /// Candidate documents skipped because their belief upper bound could
    /// not beat the running threshold.
    pub pruned: u64,
    /// Candidate documents fully scored.
    pub scored: u64,
}

/// Per-query-term evaluation context, resolved once per request.
struct TermCtx<'a> {
    posts: &'a [Posting],
    w: f64,
    df: u32,
    /// The term's greatest possible score contribution beyond the default
    /// belief: `w · (belief_bound − α) / Σw`.
    cbound: f64,
}

/// Evaluate the paper's `map[sum(THIS)](map[getBL(…)])` ranking for the k
/// best documents only, skipping documents whose upper bound cannot beat
/// the running threshold.
///
/// Scores are computed with the exact floating-point operation order of the
/// materialise path (`contrep.getbl` rows summed per document in query-term
/// order, then the default-belief row), so the `(oid, score)` pairs are
/// bit-identical to materialise-then-sort — at every `degree`, because a
/// document's sum never crosses a fragment boundary. Documents that match
/// no query term are not emitted (their grouped sum is 0 and the facade
/// drops zero scores).
pub fn topk_beliefs(
    index: &InvertedIndex,
    params: BeliefParams,
    query: &[(&str, f64)],
    domain: Option<&FxHashSet<Oid>>,
    k: usize,
    degree: usize,
) -> TopKOutcome {
    let total_w: f64 = query.iter().map(|(_, w)| w).sum();
    if total_w <= 0.0 || k == 0 {
        return TopKOutcome { hits: Vec::new(), pruned: 0, scored: 0 };
    }
    let stats = index.stats();
    let terms: Vec<TermCtx<'_>> = query
        .iter()
        .map(|(t, w)| {
            let posts = index.postings(t).unwrap_or(&[]);
            let df = index.df(t);
            let bound = params.belief_bound(index.max_tf(t), df, stats.n_docs);
            TermCtx { posts, w: *w, df, cbound: (w * (bound - params.alpha) / total_w).max(0.0) }
        })
        .collect();
    let spans = monet::fragment::bounds(index.n_docs(), degree.max(1));
    let run_span = |span: (usize, usize)| -> (TopKAccumulator, u64, u64) {
        span_topk(index, params, stats, &terms, total_w, span, domain, k)
    };
    let parts: Vec<(TopKAccumulator, u64, u64)> = if spans.len() <= 1 {
        spans.into_iter().map(run_span).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                spans.iter().map(|&span| scope.spawn(move || run_span(span))).collect();
            handles.into_iter().map(|h| h.join().expect("top-k span worker panicked")).collect()
        })
    };
    let mut acc = TopKAccumulator::new(k);
    let mut pruned = 0;
    let mut scored = 0;
    for (part, part_pruned, part_scored) in parts {
        acc.merge(part);
        pruned += part_pruned;
        scored += part_scored;
    }
    TopKOutcome { hits: acc.into_ranked(), pruned, scored }
}

/// Score-at-a-time accumulation over one document-id span `[lo, hi)`.
#[allow(clippy::too_many_arguments)]
fn span_topk(
    index: &InvertedIndex,
    params: BeliefParams,
    stats: crate::index::CollectionStats,
    terms: &[TermCtx<'_>],
    total_w: f64,
    (lo, hi): (usize, usize),
    domain: Option<&FxHashSet<Oid>>,
    k: usize,
) -> (TopKAccumulator, u64, u64) {
    let mut pos: Vec<usize> =
        terms.iter().map(|t| t.posts.partition_point(|p| (p.doc as usize) < lo)).collect();
    let ends: Vec<usize> =
        terms.iter().map(|t| t.posts.partition_point(|p| (p.doc as usize) < hi)).collect();
    let mut acc = TopKAccumulator::new(k);
    let mut pruned = 0u64;
    let mut scored = 0u64;
    loop {
        // the next document is the least doc id under any cursor
        let mut doc = Oid::MAX;
        for (i, t) in terms.iter().enumerate() {
            if pos[i] < ends[i] {
                doc = doc.min(t.posts[pos[i]].doc);
            }
        }
        if doc == Oid::MAX {
            break;
        }
        if domain.is_some_and(|d| !d.contains(&doc)) {
            advance_past(terms, &mut pos, &ends, doc);
            continue;
        }
        // upper bound: default belief plus every matching term's best case
        let mut ub = params.alpha;
        for (i, t) in terms.iter().enumerate() {
            if pos[i] < ends[i] && t.posts[pos[i]].doc == doc {
                ub += t.cbound;
            }
        }
        if acc.is_full() && ub + PRUNE_MARGIN < acc.threshold() {
            pruned += 1;
            advance_past(terms, &mut pos, &ends, doc);
            continue;
        }
        // exact score: matched terms in query order, then the default row —
        // the same float-addition order as getbl rows under a grouped sum
        let mut score = 0.0;
        let mut mw = 0.0;
        for (i, t) in terms.iter().enumerate() {
            if pos[i] < ends[i] && t.posts[pos[i]].doc == doc {
                let p = t.posts[pos[i]];
                let b = params.belief(p.tf, t.df, index.doc_len(doc), stats.n_docs, stats.avg_dl);
                score += t.w * b / total_w;
                mw += t.w;
                pos[i] += 1;
            }
        }
        if mw < total_w {
            score += params.alpha * (total_w - mw) / total_w;
        }
        scored += 1;
        acc.push(doc, score);
    }
    (acc, pruned, scored)
}

/// Advance every cursor currently parked on `doc`.
fn advance_past(terms: &[TermCtx<'_>], pos: &mut [usize], ends: &[usize], doc: Oid) {
    for (i, t) in terms.iter().enumerate() {
        if pos[i] < ends[i] && t.posts[pos[i]].doc == doc {
            pos[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn idx(n_docs: usize) -> InvertedIndex {
        let pool = ["sunset", "beach", "forest", "mist", "wave", "city", "snow", "glow"];
        let mut b = IndexBuilder::new();
        for d in 0..n_docs {
            let len = 2 + (d * 7) % 6;
            let toks: Vec<&str> = (0..len).map(|j| pool[(d * 3 + j * 5) % pool.len()]).collect();
            b.add_tokens(&toks);
        }
        b.build()
    }

    /// The materialise path: score every document exactly like
    /// `contrep.getbl` rows under a grouped sum, then sort and truncate.
    fn baseline(
        index: &InvertedIndex,
        params: BeliefParams,
        query: &[(&str, f64)],
        domain: Option<&FxHashSet<Oid>>,
        k: usize,
    ) -> Vec<(Oid, f64)> {
        let total_w: f64 = query.iter().map(|(_, w)| w).sum();
        let stats = index.stats();
        let mut out = Vec::new();
        for doc in 0..index.n_docs() as Oid {
            if domain.is_some_and(|d| !d.contains(&doc)) {
                continue;
            }
            let mut score = 0.0;
            let mut mw = 0.0;
            let mut any = false;
            for (t, w) in query {
                let tf = index.tf(t, doc);
                if tf > 0 {
                    let b = params.belief(
                        tf,
                        index.df(t),
                        index.doc_len(doc),
                        stats.n_docs,
                        stats.avg_dl,
                    );
                    score += w * b / total_w;
                    mw += w;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            if mw < total_w {
                score += params.alpha * (total_w - mw) / total_w;
            }
            out.push((doc, score));
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    #[test]
    fn accumulator_keeps_best_k_with_oid_tiebreak() {
        let mut acc = TopKAccumulator::new(3);
        for (oid, s) in [(5, 0.5), (1, 0.9), (7, 0.5), (2, 0.1), (3, 0.5)] {
            acc.push(oid, s);
        }
        // ties at 0.5: oids 3 and 5 beat 7
        assert_eq!(acc.into_ranked(), vec![(1, 0.9), (3, 0.5), (5, 0.5)]);
    }

    #[test]
    fn accumulator_threshold_and_merge() {
        let mut a = TopKAccumulator::new(2);
        assert_eq!(a.threshold(), f64::NEG_INFINITY);
        a.push(0, 0.3);
        a.push(1, 0.8);
        assert!(a.is_full());
        assert_eq!(a.threshold(), 0.3);
        assert!(!a.push(2, 0.1));
        let mut b = TopKAccumulator::new(2);
        b.push(9, 0.6);
        a.merge(b);
        assert_eq!(a.into_ranked(), vec![(1, 0.8), (9, 0.6)]);
        // k = 0 never admits
        let mut z = TopKAccumulator::new(0);
        assert!(!z.push(0, 1.0));
        assert_eq!(z.threshold(), f64::INFINITY);
        assert!(z.into_ranked().is_empty());
    }

    #[test]
    fn topk_matches_materialise_then_sort() {
        let index = idx(200);
        let params = BeliefParams::default();
        let query = [("sunset", 1.0), ("wave", 1.0), ("glow", 0.5)];
        for k in [1usize, 3, 10, 200] {
            let expected = baseline(&index, params, &query, None, k);
            for degree in [1usize, 4] {
                let got = topk_beliefs(&index, params, &query, None, k, degree);
                assert_eq!(got.hits, expected, "k={k} degree={degree}");
            }
        }
    }

    #[test]
    fn topk_prunes_on_larger_corpora() {
        let index = idx(5000);
        let params = BeliefParams::default();
        let query = [("sunset", 1.0), ("mist", 1.0)];
        let out = topk_beliefs(&index, params, &query, None, 5, 1);
        assert_eq!(out.hits.len(), 5);
        assert!(out.pruned > 0, "expected pruning on a 5k corpus: {out:?}");
        assert_eq!(out.hits, baseline(&index, params, &query, None, 5));
    }

    #[test]
    fn topk_respects_domain() {
        let index = idx(100);
        let params = BeliefParams::default();
        let query = [("sunset", 1.0)];
        let domain: FxHashSet<Oid> = (0..50).collect();
        let out = topk_beliefs(&index, params, &query, Some(&domain), 10, 2);
        assert!(!out.hits.is_empty());
        assert!(out.hits.iter().all(|(oid, _)| *oid < 50));
        assert_eq!(out.hits, baseline(&index, params, &query, Some(&domain), 10));
    }

    #[test]
    fn topk_edge_cases() {
        let index = idx(10);
        let params = BeliefParams::default();
        // unknown terms: nothing matches
        let out = topk_beliefs(&index, params, &[("zzz", 1.0)], None, 5, 1);
        assert!(out.hits.is_empty());
        // zero total weight, zero k
        assert!(topk_beliefs(&index, params, &[], None, 5, 1).hits.is_empty());
        assert!(topk_beliefs(&index, params, &[("sunset", 1.0)], None, 0, 1).hits.is_empty());
        // duplicate query terms accumulate like the materialise path
        let dup = [("sunset", 1.0), ("sunset", 2.0)];
        assert_eq!(
            topk_beliefs(&index, params, &dup, None, 10, 1).hits,
            baseline(&index, params, &dup, None, 10)
        );
    }
}
