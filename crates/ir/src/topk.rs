//! Streaming top-k belief evaluation with block-max pruning.
//!
//! The materialise-then-sort retrieval path computes a belief for *every*
//! document, groups, sorts, and only then keeps the best k — a full pass of
//! floating-point work for results that are mostly thrown away. This module
//! is the score-at-a-time alternative the serving layer fuses into plans:
//!
//! * a [`TopKAccumulator`] — a bounded heap that keeps the k best
//!   `(oid, score)` pairs (score descending, ties broken by ascending oid,
//!   exactly like the facade's sort) and exposes the current admission
//!   threshold;
//! * [`topk_beliefs`] — a WAND-style document-at-a-time merge over the
//!   query terms' *compressed* postings ([`crate::postings::PostingList`]).
//!   Cursors stay sorted by their current document; the prefix sum of
//!   per-term belief upper bounds ([`BeliefParams::belief_bound`]) picks
//!   the pivot — the first document that could still enter the top k —
//!   and every cursor before it leaps forward. A leap that clears a whole
//!   block skips its decode entirely (the block metadata carries the last
//!   doc id), and at the pivot the block-max `max_tf` refines the upper
//!   bound once more before any tf is unpacked. Documents that survive are
//!   scored **in the same floating-point order as the materialise path**,
//!   so results are bit-identical;
//! * [`topk_beliefs_raw`] — the pre-compression reference evaluator over
//!   decoded posting vectors ([`RawPostings`]), kept as the §E13 baseline
//!   and the property-test oracle;
//! * fragment-parallel accumulation: the document-id space splits into
//!   [`monet::fragment::bounds`] spans, each span fills its own
//!   accumulator on a scoped thread, and the per-fragment heaps merge at
//!   the end. Per-document sums never cross a fragment boundary, so the
//!   parallel result is bit-identical to serial at every degree.

use crate::belief::BeliefParams;
use crate::index::{CollectionStats, InvertedIndex, Posting};
use crate::postings::PostingList;
use monet::fxhash::FxHashSet;
use monet::Oid;
use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Safety margin added to the pruning bound: the bound is sound in exact
/// arithmetic, and the margin dwarfs the worst-case floating-point rounding
/// of the few dozen operations behind each score.
const PRUNE_MARGIN: f64 = 1e-9;

/// A ranked entry; `Ord` is "better": greater score first, ties broken by
/// the smaller oid (the facade's ranking order).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    oid: Oid,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.total_cmp(&other.score).then_with(|| other.oid.cmp(&self.oid))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded min-heap keeping the k best `(oid, score)` pairs seen so far.
#[derive(Debug, Clone, Default)]
pub struct TopKAccumulator {
    k: usize,
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopKAccumulator {
    /// Create an accumulator with capacity `k`.
    pub fn new(k: usize) -> Self {
        TopKAccumulator { k, heap: BinaryHeap::with_capacity(k.min(1024) + 1) }
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when the accumulator holds k entries — from then on a candidate
    /// must beat [`threshold`](Self::threshold) to enter.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The admission threshold: the k-th best score so far. `-∞` while the
    /// accumulator is not yet full (everything is admitted), `+∞` for k = 0
    /// (nothing ever is). A candidate with an upper bound strictly below
    /// this value can be skipped without scoring.
    pub fn threshold(&self) -> f64 {
        if self.k == 0 {
            return f64::INFINITY;
        }
        if self.heap.len() < self.k {
            return f64::NEG_INFINITY;
        }
        self.heap.peek().map_or(f64::NEG_INFINITY, |Reverse(e)| e.score)
    }

    /// Offer a candidate; returns true if it entered the top k.
    pub fn push(&mut self, oid: Oid, score: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        let e = Entry { score, oid };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(e));
            return true;
        }
        match self.heap.peek() {
            Some(Reverse(worst)) if e > *worst => {
                self.heap.pop();
                self.heap.push(Reverse(e));
                true
            }
            _ => false,
        }
    }

    /// Fold another accumulator's entries in (the per-fragment merge).
    /// An empty donor is a no-op, and an empty receiver adopts the donor's
    /// heap wholesale when it fits — the common scatter-gather shapes pay
    /// nothing per element.
    pub fn merge(&mut self, other: TopKAccumulator) {
        if other.heap.is_empty() {
            return;
        }
        if self.heap.is_empty() && other.heap.len() <= self.k {
            self.heap = other.heap;
            return;
        }
        for Reverse(e) in other.heap {
            self.push(e.oid, e.score);
        }
    }

    /// Consume the accumulator, returning the entries in rank order
    /// (score descending, ties by ascending oid).
    pub fn into_ranked(self) -> Vec<(Oid, f64)> {
        self.heap.into_sorted_vec().into_iter().map(|Reverse(e)| (e.oid, e.score)).collect()
    }
}

/// What a [`topk_beliefs`] run did.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKOutcome {
    /// The k best `(oid, score)` pairs in rank order.
    pub hits: Vec<(Oid, f64)>,
    /// Pivot candidates discarded by the block-max refinement — the
    /// per-block `max_tf` bound proved them under the threshold without
    /// unpacking a single tf.
    pub pruned: u64,
    /// Candidate documents fully scored.
    pub scored: u64,
    /// Compressed blocks passed over without decoding.
    pub blocks_skipped: u64,
    /// Postings passed over without scoring their document — cursor leaps
    /// inside decoded blocks plus everything inside skipped blocks.
    pub skipped_postings: u64,
}

impl TopKOutcome {
    fn empty() -> TopKOutcome {
        TopKOutcome {
            hits: Vec::new(),
            pruned: 0,
            scored: 0,
            blocks_skipped: 0,
            skipped_postings: 0,
        }
    }
}

/// Decode-avoidance counters threaded through cursor seeks.
#[derive(Debug, Clone, Copy, Default)]
struct Skips {
    blocks: u64,
    postings: u64,
}

/// Per-query-term request state, resolved once per request.
struct TermInfo<'a> {
    list: Option<&'a PostingList>,
    w: f64,
    df: u32,
    /// The term's greatest possible score contribution beyond the default
    /// belief: `w · (belief_bound − α) / Σw`.
    cbound: f64,
}

/// A streaming cursor over one term's compressed postings, restricted to a
/// document span `[lo, hi)`. The cursor is either *parked* at the first
/// document of an undecoded block (known exactly from the block metadata —
/// no decode needed to stand still) or positioned inside a decoded block.
/// Invariant: the list holds no unconsumed document below `cur_doc`.
struct Cursor<'a> {
    list: &'a PostingList,
    w: f64,
    df: u32,
    /// List-level score-contribution bound (the WAND pivot currency).
    cbound: f64,
    block: usize,
    idx: usize,
    decoded: bool,
    docs: Vec<Oid>,
    tfs: Vec<u32>,
    cur_doc: Oid,
    exhausted: bool,
    hi: Oid,
    /// Lazily computed block-level contribution bound for `cached_block`.
    cached_block: usize,
    cached_cb: f64,
}

impl<'a> Cursor<'a> {
    fn new(info: &TermInfo<'a>, list: &'a PostingList, lo: usize, hi: usize) -> Cursor<'a> {
        let mut c = Cursor {
            list,
            w: info.w,
            df: info.df,
            cbound: info.cbound,
            block: 0,
            idx: 0,
            decoded: false,
            docs: Vec::new(),
            tfs: Vec::new(),
            cur_doc: 0,
            exhausted: list.is_empty(),
            hi: hi as Oid,
            cached_block: usize::MAX,
            cached_cb: 0.0,
        };
        if !c.exhausted {
            c.cur_doc = c.list.blocks()[0].first_doc;
            // position on the span start; skips before `lo` belong to other
            // fragments and are not counted
            c.seek(lo as Oid, None);
        }
        c
    }

    /// Advance to the first unconsumed document ≥ `target`, skipping the
    /// decode of every block whose `last_doc` metadata proves it dead.
    fn seek(&mut self, target: Oid, mut counters: Option<&mut Skips>) {
        if self.exhausted {
            return;
        }
        if self.cur_doc >= target {
            if self.cur_doc >= self.hi {
                self.exhausted = true;
            }
            return;
        }
        let blocks = self.list.blocks();
        if self.decoded && blocks[self.block].last_doc >= target {
            // stays inside the current decoded block; the single-step
            // advance past a just-scored document is the hot case, so try
            // it before binary-searching the tail
            let rel = if self.docs[self.idx + 1] >= target {
                1
            } else {
                1 + self.docs[self.idx + 1..].partition_point(|&d| d < target)
            };
            if let Some(c) = counters.as_deref_mut() {
                c.postings += rel as u64;
            }
            self.idx += rel;
            self.cur_doc = self.docs[self.idx];
        } else {
            // abandon the rest of the current block…
            let mut b = self.block;
            if self.decoded {
                if let Some(c) = counters.as_deref_mut() {
                    c.postings += (self.docs.len() - self.idx) as u64;
                }
                b += 1;
            }
            // …then leap over whole undecoded blocks
            while b < blocks.len() && blocks[b].last_doc < target {
                if let Some(c) = counters.as_deref_mut() {
                    c.blocks += 1;
                    c.postings += blocks[b].count as u64;
                }
                b += 1;
            }
            if b >= blocks.len() {
                self.exhausted = true;
                return;
            }
            self.block = b;
            if blocks[b].first_doc >= target {
                // park on the block start — exact without decoding
                self.decoded = false;
                self.cur_doc = blocks[b].first_doc;
            } else {
                self.list.decode_block_into(b, &mut self.docs, &mut self.tfs);
                self.decoded = true;
                self.idx = self.docs.partition_point(|&d| d < target);
                if let Some(c) = counters {
                    c.postings += self.idx as u64;
                }
                self.cur_doc = self.docs[self.idx];
            }
        }
        if self.cur_doc >= self.hi {
            self.exhausted = true;
        }
    }

    /// Block-level contribution bound of the current block, from its
    /// `max_tf` metadata — computable without decoding, memoised per block.
    fn block_cbound(&mut self, params: BeliefParams, n_docs: usize, total_w: f64) -> f64 {
        if self.cached_block != self.block {
            let bound = params.belief_bound(self.list.blocks()[self.block].max_tf, self.df, n_docs);
            self.cached_cb = (self.w * (bound - params.alpha) / total_w).max(0.0);
            self.cached_block = self.block;
        }
        self.cached_cb
    }

    /// The tf under the cursor, decoding the current block on demand.
    fn current_tf(&mut self) -> u32 {
        if !self.decoded {
            self.list.decode_block_into(self.block, &mut self.docs, &mut self.tfs);
            self.decoded = true;
            self.idx = 0; // parked cursors sit on the block's first document
        }
        self.tfs[self.idx]
    }
}

/// Evaluate the paper's `map[sum(THIS)](map[getBL(…)])` ranking for the k
/// best documents only, over the block-compressed postings.
///
/// Scores are computed with the exact floating-point operation order of the
/// materialise path (`contrep.getbl` rows summed per document in query-term
/// order, then the default-belief row), so the `(oid, score)` pairs are
/// bit-identical to materialise-then-sort — at every `degree`, because a
/// document's sum never crosses a fragment boundary. Documents that match
/// no query term are not emitted (their grouped sum is 0 and the facade
/// drops zero scores).
///
/// Skipping is sound: a document is only leapt over or pruned when its
/// belief upper bound plus a tiny float-safety margin is *strictly below* the
/// admission threshold, and the threshold only rises — so a skipped
/// document can never displace an admitted one, not even on a tie.
pub fn topk_beliefs(
    index: &InvertedIndex,
    params: BeliefParams,
    query: &[(&str, f64)],
    domain: Option<&FxHashSet<Oid>>,
    k: usize,
    degree: usize,
) -> TopKOutcome {
    let total_w: f64 = query.iter().map(|(_, w)| w).sum();
    if total_w <= 0.0 || k == 0 {
        return TopKOutcome::empty();
    }
    let stats = index.stats();
    let terms: Vec<TermInfo<'_>> = query
        .iter()
        .map(|(t, w)| {
            let df = index.df(t);
            let bound = params.belief_bound(index.max_tf(t), df, stats.n_docs);
            TermInfo {
                list: index.postings_list(t),
                w: *w,
                df,
                cbound: (w * (bound - params.alpha) / total_w).max(0.0),
            }
        })
        .collect();
    let spans = monet::fragment::bounds(index.n_docs(), degree.max(1));
    let run_span = |span: (usize, usize)| -> (TopKAccumulator, u64, u64, Skips) {
        span_topk(index, params, stats, &terms, total_w, span, domain, k)
    };
    let parts: Vec<(TopKAccumulator, u64, u64, Skips)> = if spans.len() <= 1 {
        spans.into_iter().map(run_span).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                spans.iter().map(|&span| scope.spawn(move || run_span(span))).collect();
            handles.into_iter().map(|h| h.join().expect("top-k span worker panicked")).collect()
        })
    };
    let mut acc = TopKAccumulator::new(k);
    let mut out = TopKOutcome::empty();
    for (part, pruned, scored, skips) in parts {
        acc.merge(part);
        out.pruned += pruned;
        out.scored += scored;
        out.blocks_skipped += skips.blocks;
        out.skipped_postings += skips.postings;
    }
    out.hits = acc.into_ranked();
    out
}

/// Block-max WAND accumulation over one document-id span `[lo, hi)`.
#[allow(clippy::too_many_arguments)]
fn span_topk(
    index: &InvertedIndex,
    params: BeliefParams,
    stats: CollectionStats,
    terms: &[TermInfo<'_>],
    total_w: f64,
    (lo, hi): (usize, usize),
    domain: Option<&FxHashSet<Oid>>,
    k: usize,
) -> (TopKAccumulator, u64, u64, Skips) {
    // cursor order mirrors query order, so scoring by cursor index
    // reproduces the materialise path's float-addition order
    let mut cursors: Vec<Cursor<'_>> =
        terms.iter().filter_map(|t| t.list.map(|l| Cursor::new(t, l, lo, hi))).collect();
    let mut acc = TopKAccumulator::new(k);
    let mut pruned = 0u64;
    let mut scored = 0u64;
    let mut skips = Skips::default();
    let n = cursors.len();
    let mut order: Vec<usize> = (0..n).collect();
    loop {
        // keep cursors sorted by current document, exhausted last; the
        // order is nearly sorted between rounds, so insertion sort
        for i in 1..n {
            let mut j = i;
            while j > 0 {
                let (a, b) = (&cursors[order[j - 1]], &cursors[order[j]]);
                if (a.exhausted, a.cur_doc) <= (b.exhausted, b.cur_doc) {
                    break;
                }
                order.swap(j - 1, j);
                j -= 1;
            }
        }
        let alive = order.iter().take_while(|&&c| !cursors[c].exhausted).count();
        if alive == 0 {
            break;
        }
        let theta = acc.threshold();
        // pivot: the first cursor whose prefix of contribution bounds could
        // still reach the threshold — no document before it can qualify
        let mut bound = params.alpha;
        let mut pivot = None;
        for (i, &c) in order[..alive].iter().enumerate() {
            bound += cursors[c].cbound;
            if bound + PRUNE_MARGIN >= theta {
                pivot = Some(i);
                break;
            }
        }
        let Some(p) = pivot else {
            break; // even matching every remaining term cannot beat θ
        };
        let pivot_doc = cursors[order[p]].cur_doc;
        if cursors[order[0]].cur_doc < pivot_doc {
            // leap every pre-pivot cursor forward; whole blocks whose
            // last_doc falls short are skipped without decoding
            for &c in &order[..p] {
                if cursors[c].cur_doc < pivot_doc {
                    cursors[c].seek(pivot_doc, Some(&mut skips));
                }
            }
            continue;
        }
        // candidate: every cursor in order[..=p] sits on pivot_doc
        if domain.is_some_and(|d| !d.contains(&pivot_doc)) {
            for &c in &order[..alive] {
                if cursors[c].cur_doc == pivot_doc {
                    cursors[c].seek(pivot_doc + 1, Some(&mut skips));
                }
            }
            continue;
        }
        // block-max refinement: tighten the bound with the per-block
        // max_tf of each matching cursor's current block — still no decode
        if acc.is_full() {
            let mut ub = params.alpha;
            for &c in &order[..alive] {
                if cursors[c].cur_doc == pivot_doc {
                    ub += cursors[c].block_cbound(params, stats.n_docs, total_w);
                }
            }
            if ub + PRUNE_MARGIN < theta {
                pruned += 1;
                for &c in &order[..alive] {
                    if cursors[c].cur_doc == pivot_doc {
                        cursors[c].seek(pivot_doc + 1, Some(&mut skips));
                    }
                }
                continue;
            }
        }
        // exact score: matched terms in query order, then the default row —
        // the same float-addition order as getbl rows under a grouped sum
        let mut score = 0.0;
        let mut mw = 0.0;
        let dl = index.doc_len(pivot_doc);
        for c in cursors.iter_mut() {
            if !c.exhausted && c.cur_doc == pivot_doc {
                let b = params.belief(c.current_tf(), c.df, dl, stats.n_docs, stats.avg_dl);
                score += c.w * b / total_w;
                mw += c.w;
            }
        }
        if mw < total_w {
            score += params.alpha * (total_w - mw) / total_w;
        }
        scored += 1;
        acc.push(pivot_doc, score);
        for c in cursors.iter_mut() {
            if !c.exhausted && c.cur_doc == pivot_doc {
                c.seek(pivot_doc + 1, Some(&mut skips));
            }
        }
    }
    (acc, pruned, scored, skips)
}

/// Every term's postings decoded into raw vectors — the pre-compression
/// representation, pinned as a baseline. [`topk_beliefs_raw`] evaluates
/// over it with the original document-at-a-time merge, so benchmarks
/// compare pure evaluation strategies without timing block decodes, and
/// property tests have an independent oracle.
#[derive(Debug, Clone)]
pub struct RawPostings {
    lists: Vec<Vec<Posting>>,
}

impl RawPostings {
    /// Decode every posting list of `index`.
    pub fn from_index(index: &InvertedIndex) -> RawPostings {
        let lists = (0..index.dict().len() as u32)
            .map(|tid| index.postings_by_id(tid).map_or_else(Vec::new, PostingList::to_vec))
            .collect();
        RawPostings { lists }
    }

    /// Total number of postings held.
    pub fn total_postings(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    fn get(&self, tid: Option<u32>) -> &[Posting] {
        tid.and_then(|t| self.lists.get(t as usize)).map_or(&[], Vec::as_slice)
    }
}

/// Per-query-term evaluation context of the raw reference path.
struct RawTermCtx<'a> {
    posts: &'a [Posting],
    w: f64,
    df: u32,
    cbound: f64,
}

/// The pre-compression reference evaluator: a document-at-a-time merge over
/// decoded posting vectors with list-level threshold pruning only — no
/// blocks, no block-max bounds, no cursor leaps. Produces the same hits as
/// [`topk_beliefs`] (both are bit-identical to materialise-then-sort);
/// `blocks_skipped` and `skipped_postings` are always 0 here.
pub fn topk_beliefs_raw(
    index: &InvertedIndex,
    raw: &RawPostings,
    params: BeliefParams,
    query: &[(&str, f64)],
    domain: Option<&FxHashSet<Oid>>,
    k: usize,
    degree: usize,
) -> TopKOutcome {
    let total_w: f64 = query.iter().map(|(_, w)| w).sum();
    if total_w <= 0.0 || k == 0 {
        return TopKOutcome::empty();
    }
    let stats = index.stats();
    let terms: Vec<RawTermCtx<'_>> = query
        .iter()
        .map(|(t, w)| {
            let df = index.df(t);
            let bound = params.belief_bound(index.max_tf(t), df, stats.n_docs);
            RawTermCtx {
                posts: raw.get(index.dict().lookup(t)),
                w: *w,
                df,
                cbound: (w * (bound - params.alpha) / total_w).max(0.0),
            }
        })
        .collect();
    let spans = monet::fragment::bounds(index.n_docs(), degree.max(1));
    let run_span = |span: (usize, usize)| -> (TopKAccumulator, u64, u64) {
        span_topk_raw(index, params, stats, &terms, total_w, span, domain, k)
    };
    let parts: Vec<(TopKAccumulator, u64, u64)> = if spans.len() <= 1 {
        spans.into_iter().map(run_span).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                spans.iter().map(|&span| scope.spawn(move || run_span(span))).collect();
            handles.into_iter().map(|h| h.join().expect("top-k span worker panicked")).collect()
        })
    };
    let mut acc = TopKAccumulator::new(k);
    let mut out = TopKOutcome::empty();
    for (part, pruned, scored) in parts {
        acc.merge(part);
        out.pruned += pruned;
        out.scored += scored;
    }
    out.hits = acc.into_ranked();
    out
}

/// Score-at-a-time accumulation over one document-id span `[lo, hi)` of the
/// raw reference path.
#[allow(clippy::too_many_arguments)]
fn span_topk_raw(
    index: &InvertedIndex,
    params: BeliefParams,
    stats: CollectionStats,
    terms: &[RawTermCtx<'_>],
    total_w: f64,
    (lo, hi): (usize, usize),
    domain: Option<&FxHashSet<Oid>>,
    k: usize,
) -> (TopKAccumulator, u64, u64) {
    let mut pos: Vec<usize> =
        terms.iter().map(|t| t.posts.partition_point(|p| (p.doc as usize) < lo)).collect();
    let ends: Vec<usize> =
        terms.iter().map(|t| t.posts.partition_point(|p| (p.doc as usize) < hi)).collect();
    let mut acc = TopKAccumulator::new(k);
    let mut pruned = 0u64;
    let mut scored = 0u64;
    loop {
        // the next document is the least doc id under any cursor
        let mut doc = Oid::MAX;
        for (i, t) in terms.iter().enumerate() {
            if pos[i] < ends[i] {
                doc = doc.min(t.posts[pos[i]].doc);
            }
        }
        if doc == Oid::MAX {
            break;
        }
        if domain.is_some_and(|d| !d.contains(&doc)) {
            advance_past(terms, &mut pos, &ends, doc);
            continue;
        }
        // upper bound: default belief plus every matching term's best case
        let mut ub = params.alpha;
        for (i, t) in terms.iter().enumerate() {
            if pos[i] < ends[i] && t.posts[pos[i]].doc == doc {
                ub += t.cbound;
            }
        }
        if acc.is_full() && ub + PRUNE_MARGIN < acc.threshold() {
            pruned += 1;
            advance_past(terms, &mut pos, &ends, doc);
            continue;
        }
        // exact score: matched terms in query order, then the default row
        let mut score = 0.0;
        let mut mw = 0.0;
        for (i, t) in terms.iter().enumerate() {
            if pos[i] < ends[i] && t.posts[pos[i]].doc == doc {
                let p = t.posts[pos[i]];
                let b = params.belief(p.tf, t.df, index.doc_len(doc), stats.n_docs, stats.avg_dl);
                score += t.w * b / total_w;
                mw += t.w;
                pos[i] += 1;
            }
        }
        if mw < total_w {
            score += params.alpha * (total_w - mw) / total_w;
        }
        scored += 1;
        acc.push(doc, score);
    }
    (acc, pruned, scored)
}

/// Advance every raw cursor currently parked on `doc`.
fn advance_past(terms: &[RawTermCtx<'_>], pos: &mut [usize], ends: &[usize], doc: Oid) {
    for (i, t) in terms.iter().enumerate() {
        if pos[i] < ends[i] && t.posts[pos[i]].doc == doc {
            pos[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn idx(n_docs: usize) -> InvertedIndex {
        let pool = ["sunset", "beach", "forest", "mist", "wave", "city", "snow", "glow"];
        let mut b = IndexBuilder::new();
        for d in 0..n_docs {
            let len = 2 + (d * 7) % 6;
            let toks: Vec<&str> = (0..len).map(|j| pool[(d * 3 + j * 5) % pool.len()]).collect();
            b.add_tokens(&toks);
        }
        b.build()
    }

    /// The materialise path: score every document exactly like
    /// `contrep.getbl` rows under a grouped sum, then sort and truncate.
    fn baseline(
        index: &InvertedIndex,
        params: BeliefParams,
        query: &[(&str, f64)],
        domain: Option<&FxHashSet<Oid>>,
        k: usize,
    ) -> Vec<(Oid, f64)> {
        let total_w: f64 = query.iter().map(|(_, w)| w).sum();
        let stats = index.stats();
        let mut out = Vec::new();
        for doc in 0..index.n_docs() as Oid {
            if domain.is_some_and(|d| !d.contains(&doc)) {
                continue;
            }
            let mut score = 0.0;
            let mut mw = 0.0;
            let mut any = false;
            for (t, w) in query {
                let tf = index.tf(t, doc);
                if tf > 0 {
                    let b = params.belief(
                        tf,
                        index.df(t),
                        index.doc_len(doc),
                        stats.n_docs,
                        stats.avg_dl,
                    );
                    score += w * b / total_w;
                    mw += w;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            if mw < total_w {
                score += params.alpha * (total_w - mw) / total_w;
            }
            out.push((doc, score));
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    #[test]
    fn accumulator_keeps_best_k_with_oid_tiebreak() {
        let mut acc = TopKAccumulator::new(3);
        for (oid, s) in [(5, 0.5), (1, 0.9), (7, 0.5), (2, 0.1), (3, 0.5)] {
            acc.push(oid, s);
        }
        // ties at 0.5: oids 3 and 5 beat 7
        assert_eq!(acc.into_ranked(), vec![(1, 0.9), (3, 0.5), (5, 0.5)]);
    }

    #[test]
    fn accumulator_threshold_and_merge() {
        let mut a = TopKAccumulator::new(2);
        assert_eq!(a.threshold(), f64::NEG_INFINITY);
        a.push(0, 0.3);
        a.push(1, 0.8);
        assert!(a.is_full());
        assert_eq!(a.threshold(), 0.3);
        assert!(!a.push(2, 0.1));
        let mut b = TopKAccumulator::new(2);
        b.push(9, 0.6);
        a.merge(b);
        assert_eq!(a.into_ranked(), vec![(1, 0.8), (9, 0.6)]);
        // k = 0 never admits
        let mut z = TopKAccumulator::new(0);
        assert!(!z.push(0, 1.0));
        assert_eq!(z.threshold(), f64::INFINITY);
        assert!(z.into_ranked().is_empty());
    }

    #[test]
    fn merge_with_unequal_k() {
        // donor holds more entries than the receiver keeps: element-wise
        let mut small = TopKAccumulator::new(2);
        let mut big = TopKAccumulator::new(5);
        for (oid, s) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7)] {
            big.push(oid, s);
        }
        small.merge(big.clone());
        assert_eq!(small.into_ranked(), vec![(1, 0.9), (3, 0.7)]);
        // donor fits an empty receiver: adopted wholesale
        let mut wide = TopKAccumulator::new(5);
        let mut donor = TopKAccumulator::new(2);
        donor.push(4, 0.3);
        donor.push(6, 0.2);
        wide.merge(donor);
        assert_eq!(wide.len(), 2);
        wide.push(7, 0.25);
        assert_eq!(wide.into_ranked(), vec![(4, 0.3), (7, 0.25), (6, 0.2)]);
        // merging an empty donor is a no-op
        let mut a = TopKAccumulator::new(2);
        a.push(1, 0.5);
        a.merge(TopKAccumulator::new(2));
        assert_eq!(a.into_ranked(), vec![(1, 0.5)]);
    }

    #[test]
    fn topk_matches_materialise_then_sort() {
        let index = idx(200);
        let params = BeliefParams::default();
        let query = [("sunset", 1.0), ("wave", 1.0), ("glow", 0.5)];
        for k in [1usize, 3, 10, 200] {
            let expected = baseline(&index, params, &query, None, k);
            for degree in [1usize, 4] {
                let got = topk_beliefs(&index, params, &query, None, k, degree);
                assert_eq!(got.hits, expected, "k={k} degree={degree}");
            }
        }
    }

    #[test]
    fn wand_avoids_scoring_on_larger_corpora() {
        let index = idx(5000);
        let params = BeliefParams::default();
        let query = [("sunset", 1.0), ("mist", 1.0)];
        let out = topk_beliefs(&index, params, &query, None, 5, 1);
        assert_eq!(out.hits.len(), 5);
        assert_eq!(out.hits, baseline(&index, params, &query, None, 5));
        // the pivot walk must leave most matching documents unscored
        let candidates = baseline(&index, params, &query, None, index.n_docs()).len() as u64;
        assert!(
            out.scored < candidates,
            "expected skipped candidates on a 5k corpus: scored {} of {candidates}",
            out.scored
        );
        assert!(out.skipped_postings > 0, "cursor leaps should pass postings: {out:?}");
    }

    #[test]
    fn blockmax_skips_whole_blocks_for_selective_terms() {
        // "common" appears in every even document (a block of 128 postings
        // spans ~256 doc ids); "rare" appears every 600. Once the heap
        // holds k common+rare documents, the pivot jumps the common cursor
        // in ~600-doc leaps, clearing whole blocks without decoding them.
        let mut b = IndexBuilder::new();
        for d in 0..5000u32 {
            let mut toks = vec!["filler"];
            if d % 2 == 0 {
                toks.push("common");
            }
            if d % 600 == 0 {
                toks.push("rare");
            }
            b.add_tokens(&toks);
        }
        let index = b.build();
        let params = BeliefParams::default();
        let query = [("common", 1.0), ("rare", 1.0)];
        let out = topk_beliefs(&index, params, &query, None, 5, 1);
        assert_eq!(out.hits, baseline(&index, params, &query, None, 5));
        // every top hit matches both terms (600 is even)
        assert!(out.hits.iter().all(|(oid, _)| oid % 600 == 0));
        assert!(out.blocks_skipped > 0, "expected undecoded block leaps: {out:?}");
    }

    #[test]
    fn raw_reference_path_matches_compressed() {
        let index = idx(700);
        let raw = RawPostings::from_index(&index);
        assert_eq!(raw.total_postings(), index.raw_postings_bytes() / 8);
        let params = BeliefParams::default();
        for query in [
            vec![("sunset", 1.0), ("wave", 1.0), ("glow", 0.5)],
            vec![("mist", 2.0)],
            vec![("city", 1.0), ("zzz", 1.0)],
        ] {
            for k in [1usize, 10, 700] {
                for degree in [1usize, 4] {
                    let fast = topk_beliefs(&index, params, &query, None, k, degree);
                    let slow = topk_beliefs_raw(&index, &raw, params, &query, None, k, degree);
                    assert_eq!(fast.hits, slow.hits, "{query:?} k={k} degree={degree}");
                }
            }
        }
    }

    #[test]
    fn topk_respects_domain() {
        let index = idx(100);
        let params = BeliefParams::default();
        let query = [("sunset", 1.0)];
        let domain: FxHashSet<Oid> = (0..50).collect();
        let out = topk_beliefs(&index, params, &query, Some(&domain), 10, 2);
        assert!(!out.hits.is_empty());
        assert!(out.hits.iter().all(|(oid, _)| *oid < 50));
        assert_eq!(out.hits, baseline(&index, params, &query, Some(&domain), 10));
    }

    #[test]
    fn topk_edge_cases() {
        let index = idx(10);
        let params = BeliefParams::default();
        // unknown terms: nothing matches
        let out = topk_beliefs(&index, params, &[("zzz", 1.0)], None, 5, 1);
        assert!(out.hits.is_empty());
        // zero total weight, zero k
        assert!(topk_beliefs(&index, params, &[], None, 5, 1).hits.is_empty());
        assert!(topk_beliefs(&index, params, &[("sunset", 1.0)], None, 0, 1).hits.is_empty());
        // duplicate query terms accumulate like the materialise path
        let dup = [("sunset", 1.0), ("sunset", 2.0)];
        assert_eq!(
            topk_beliefs(&index, params, &dup, None, 10, 1).hits,
            baseline(&index, params, &dup, None, 10)
        );
    }
}
