//! Delta segments: the mutable side of a live (MVCC) index.
//!
//! A frozen [`InvertedIndex`] generation is immutable — block-compressed
//! postings, pinned statistics, BATs in the catalog. Documents that arrive
//! *after* the generation was cut land in a [`DeltaSeg`]: an uncompressed,
//! append-only posting map over the new documents, cheap to build one
//! document at a time and cheap to discard when a merge folds it into the
//! next compressed generation.
//!
//! [`eval_live_channel`] evaluates one evidence channel over the union of
//! a base generation and any number of delta segments, with a tombstone
//! set masking deleted documents on both sides. It reproduces the
//! floating-point arithmetic of the `contrep.getbl` kernel operator
//! *exactly* — same per-term belief inputs, same accumulation order
//! (matched terms in query order, then the default-belief row) — so a
//! live snapshot ranks bit-identically to a batch-built index over the
//! same surviving documents. Collection statistics (`n_docs`, `avg_dl`)
//! and per-term document frequencies are supplied by the caller, which is
//! what lets a sharded deployment evaluate each shard with *global*
//! union statistics.

use crate::belief::BeliefParams;
use crate::index::{InvertedIndex, Posting};
use monet::fxhash::{FxHashMap, FxHashSet};
use monet::Oid;
use std::collections::HashMap;

/// An append-only, uncompressed inverted-index segment over documents
/// appended after a base generation of `first_doc` documents was frozen.
/// Document ids are *global* live ids (`first_doc`, `first_doc + 1`, …),
/// so postings from base and delta never collide.
#[derive(Debug, Clone)]
pub struct DeltaSeg {
    first_doc: Oid,
    /// term → document-ordered postings (global live ids).
    postings: HashMap<String, Vec<Posting>>,
    doc_len: Vec<u32>,
    total_tokens: u64,
}

impl DeltaSeg {
    /// Create an empty segment whose first document will get id
    /// `first_doc`.
    pub fn new(first_doc: Oid) -> Self {
        DeltaSeg { first_doc, postings: HashMap::new(), doc_len: Vec::new(), total_tokens: 0 }
    }

    /// Append the next document from pre-tokenised terms; returns its
    /// global live id. An empty token slice keeps oid alignment for
    /// documents with no evidence on this channel (like
    /// [`crate::IndexBuilder::add_text`] with `None`).
    pub fn add_doc<S: AsRef<str>>(&mut self, tokens: &[S]) -> Oid {
        let doc = self.first_doc + self.doc_len.len() as Oid;
        self.doc_len.push(tokens.len() as u32);
        self.total_tokens += tokens.len() as u64;
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for t in tokens {
            *counts.entry(t.as_ref()).or_insert(0) += 1;
        }
        for (term, tf) in counts {
            self.postings.entry(term.to_string()).or_default().push(Posting { doc, tf });
        }
        doc
    }

    /// Global id of the first document in this segment.
    pub fn first_doc(&self) -> Oid {
        self.first_doc
    }

    /// Number of documents appended so far.
    pub fn n_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// One past the last global id held by this segment.
    pub fn end_doc(&self) -> Oid {
        self.first_doc + self.doc_len.len() as Oid
    }

    /// Segment-local document frequency of a term.
    pub fn df(&self, term: &str) -> u32 {
        self.postings.get(term).map_or(0, |p| p.len() as u32)
    }

    /// Token count of a document (global id); 0 outside the segment.
    pub fn doc_len(&self, doc: Oid) -> u32 {
        if doc < self.first_doc {
            return 0;
        }
        self.doc_len.get((doc - self.first_doc) as usize).copied().unwrap_or(0)
    }

    /// Total tokens across the segment's documents.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Postings of a term, document-ordered, if the term occurs.
    pub fn postings(&self, term: &str) -> Option<&[Posting]> {
        self.postings.get(term).map(Vec::as_slice)
    }

    /// Approximate heap bytes held by the segment (postings + lengths).
    pub fn heap_bytes(&self) -> usize {
        self.doc_len.len() * 4
            + self
                .postings
                .iter()
                .map(|(t, p)| t.len() + p.len() * std::mem::size_of::<Posting>())
                .sum::<usize>()
    }
}

/// One query term resolved for live evaluation: the weight it carries in
/// the request and its *union* document frequency (base + deltas −
/// tombstoned documents; global across shards in a cluster).
#[derive(Debug, Clone)]
pub struct LiveTerm {
    /// The (stemmed or visual) term.
    pub term: String,
    /// Query weight.
    pub weight: f64,
    /// Union document frequency the belief is scored with.
    pub df: u32,
}

/// Collection statistics of the live union for one channel — supplied by
/// the caller so a cluster can score every shard with global numbers.
#[derive(Debug, Clone, Copy)]
pub struct LiveStats {
    /// Live (non-tombstoned) documents in the union.
    pub n_docs: usize,
    /// Average document length over the union, `total_tokens / n_docs`.
    pub avg_dl: f64,
}

/// Token count of `doc` in the base-plus-deltas union.
fn union_doc_len(base: Option<&InvertedIndex>, segs: &[&DeltaSeg], doc: Oid) -> u32 {
    if let Some(base) = base {
        if (doc as usize) < base.n_docs() {
            return base.doc_len(doc);
        }
    }
    for seg in segs {
        if doc >= seg.first_doc() && doc < seg.end_doc() {
            return seg.doc_len(doc);
        }
    }
    0
}

/// Evaluate one evidence channel of a live snapshot: per surviving
/// document that matches at least one query term, the weight-normalised
/// belief sum the `contrep.getbl` operator (plus grouped sum) would
/// produce over a batch index of the same surviving documents.
///
/// The accumulation replicates the kernel operator bit for bit: terms are
/// walked in query order, each match adds `w · bel / Σw`, and one
/// default-belief row `α · (Σw − matched_w) / Σw` is added last for
/// documents missing some query term. Tombstoned documents are masked in
/// both the base postings and the delta segments; `domain`, when present,
/// restricts scoring exactly like the relational selection pushed into
/// `getbl`.
pub fn eval_live_channel(
    base: Option<&InvertedIndex>,
    segs: &[&DeltaSeg],
    params: BeliefParams,
    query: &[LiveTerm],
    stats: LiveStats,
    tombstones: &FxHashSet<Oid>,
    domain: Option<&FxHashSet<Oid>>,
) -> FxHashMap<Oid, f64> {
    let mut score: FxHashMap<Oid, f64> = FxHashMap::default();
    let total_w: f64 = query.iter().map(|t| t.weight).sum();
    if total_w <= 0.0 {
        return score;
    }
    let mut matched_w: FxHashMap<Oid, f64> = FxHashMap::default();
    for t in query {
        let base_posts = base.and_then(|b| b.postings(&t.term));
        let from_base = base_posts.iter().flat_map(|v| v.iter());
        let from_segs = segs.iter().flat_map(|s| s.postings(&t.term).into_iter().flatten());
        for p in from_base.chain(from_segs) {
            if tombstones.contains(&p.doc) {
                continue;
            }
            if let Some(dom) = domain {
                if !dom.contains(&p.doc) {
                    continue;
                }
            }
            let dl = union_doc_len(base, segs, p.doc);
            let b = params.belief(p.tf, t.df, dl, stats.n_docs, stats.avg_dl);
            *score.entry(p.doc).or_insert(0.0) += t.weight * b / total_w;
            *matched_w.entry(p.doc).or_insert(0.0) += t.weight;
        }
    }
    for (doc, mw) in matched_w {
        if mw < total_w {
            *score.entry(doc).or_insert(0.0) += params.alpha * (total_w - mw) / total_w;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;

    fn toks(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    /// Batch reference over the same docs as base + delta.
    fn batch_index(docs: &[&str]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_tokens(&toks(d));
        }
        b.build()
    }

    fn batch_score(index: &InvertedIndex, query: &[(&str, f64)]) -> FxHashMap<Oid, f64> {
        // the getbl operator's exact loop, over a single batch index
        let params = BeliefParams::default();
        let stats = index.stats();
        let total_w: f64 = query.iter().map(|(_, w)| w).sum();
        let mut score: FxHashMap<Oid, f64> = FxHashMap::default();
        let mut matched: FxHashMap<Oid, f64> = FxHashMap::default();
        for (t, w) in query {
            let df = index.df(t);
            let Some(posts) = index.postings(t) else { continue };
            for p in posts {
                let b = params.belief(p.tf, df, index.doc_len(p.doc), stats.n_docs, stats.avg_dl);
                *score.entry(p.doc).or_insert(0.0) += w * b / total_w;
                *matched.entry(p.doc).or_insert(0.0) += w;
            }
        }
        for (doc, mw) in matched {
            if mw < total_w {
                *score.entry(doc).or_insert(0.0) += params.alpha * (total_w - mw) / total_w;
            }
        }
        score
    }

    #[test]
    fn segment_assigns_global_ids_and_counts() {
        let mut seg = DeltaSeg::new(10);
        assert_eq!(seg.add_doc(&toks("a b a")), 10);
        assert_eq!(seg.add_doc::<&str>(&[]), 11);
        assert_eq!(seg.add_doc(&toks("b c")), 12);
        assert_eq!(seg.n_docs(), 3);
        assert_eq!(seg.end_doc(), 13);
        assert_eq!(seg.df("a"), 1);
        assert_eq!(seg.df("b"), 2);
        assert_eq!(seg.doc_len(10), 3);
        assert_eq!(seg.doc_len(11), 0);
        assert_eq!(seg.total_tokens(), 5);
        let posts = seg.postings("b").unwrap();
        assert_eq!(posts.iter().map(|p| (p.doc, p.tf)).collect::<Vec<_>>(), vec![(10, 1), (12, 1)]);
    }

    #[test]
    fn live_union_matches_batch_index_bit_for_bit() {
        let docs = ["sunset beach glow", "forest mist", "beach sand sunset sunset", "city night"];
        // base holds the first two, the delta the rest
        let base = batch_index(&docs[..2]);
        let mut seg = DeltaSeg::new(2);
        for d in &docs[2..] {
            seg.add_doc(&toks(d));
        }
        let reference = batch_index(&docs);
        let query = [("sunset", 1.0), ("beach", 2.0), ("night", 0.5)];
        let live_query: Vec<LiveTerm> = query
            .iter()
            .map(|(t, w)| LiveTerm { term: t.to_string(), weight: *w, df: reference.df(t) })
            .collect();
        let stats = reference.stats();
        let got = eval_live_channel(
            Some(&base),
            &[&seg],
            BeliefParams::default(),
            &live_query,
            LiveStats { n_docs: stats.n_docs, avg_dl: stats.avg_dl },
            &FxHashSet::default(),
            None,
        );
        let want = batch_score(&reference, &query);
        assert_eq!(got.len(), want.len());
        for (doc, s) in &want {
            assert_eq!(got.get(doc), Some(s), "doc {doc}");
        }
    }

    #[test]
    fn tombstones_mask_base_and_delta_documents() {
        let docs = ["sunset beach", "sunset mist", "beach sand"];
        let base = batch_index(&docs[..2]);
        let mut seg = DeltaSeg::new(2);
        seg.add_doc(&toks(docs[2]));
        // delete doc 1 (base) and doc 2 (delta): survivors = [doc 0]
        let tombs: FxHashSet<Oid> = [1, 2].into_iter().collect();
        let reference = batch_index(&docs[..1]);
        let stats = reference.stats();
        let query = vec![
            LiveTerm { term: "sunset".into(), weight: 1.0, df: reference.df("sunset") },
            LiveTerm { term: "beach".into(), weight: 1.0, df: reference.df("beach") },
        ];
        let got = eval_live_channel(
            Some(&base),
            &[&seg],
            BeliefParams::default(),
            &query,
            LiveStats { n_docs: stats.n_docs, avg_dl: stats.avg_dl },
            &tombs,
            None,
        );
        let want = batch_score(&reference, &[("sunset", 1.0), ("beach", 1.0)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got.get(&0), want.get(&0));
    }

    #[test]
    fn empty_or_nonpositive_query_scores_nothing() {
        let base = batch_index(&["a b"]);
        let stats = base.stats();
        let live_stats = LiveStats { n_docs: stats.n_docs, avg_dl: stats.avg_dl };
        let none = eval_live_channel(
            Some(&base),
            &[],
            BeliefParams::default(),
            &[],
            live_stats,
            &FxHashSet::default(),
            None,
        );
        assert!(none.is_empty());
        let zero_w = [LiveTerm { term: "a".into(), weight: 0.0, df: 1 }];
        let none = eval_live_channel(
            Some(&base),
            &[],
            BeliefParams::default(),
            &zero_w,
            live_stats,
            &FxHashSet::default(),
            None,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn domain_restricts_scoring() {
        let base = batch_index(&["sunset", "sunset", "sunset"]);
        let stats = base.stats();
        let query = [LiveTerm { term: "sunset".into(), weight: 1.0, df: 3 }];
        let dom: FxHashSet<Oid> = [1].into_iter().collect();
        let got = eval_live_channel(
            Some(&base),
            &[],
            BeliefParams::default(),
            &query,
            LiveStats { n_docs: stats.n_docs, avg_dl: stats.avg_dl },
            &FxHashSet::default(),
            Some(&dom),
        );
        assert_eq!(got.len(), 1);
        assert!(got.contains_key(&1));
    }
}
