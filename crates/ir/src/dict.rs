//! The term dictionary: stemmed terms ↔ dense term ids.

use std::collections::HashMap;

/// A bidirectional term ↔ id mapping. Term ids are dense `u32`s in
/// insertion order, which makes them directly usable as oids in the
/// flattened BAT representation.
#[derive(Debug, Default, Clone)]
pub struct TermDict {
    terms: Vec<String>,
    index: HashMap<String, u32>,
}

impl TermDict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Look up a term id without interning.
    pub fn lookup(&self, term: &str) -> Option<u32> {
        self.index.get(term).copied()
    }

    /// Resolve an id back to its term.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(id, term)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as u32, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut d = TermDict::new();
        let a = d.intern("sunset");
        let b = d.intern("beach");
        assert_eq!(d.intern("sunset"), a);
        assert_ne!(a, b);
        assert_eq!(d.lookup("beach"), Some(b));
        assert_eq!(d.lookup("nope"), None);
        assert_eq!(d.term(a), Some("sunset"));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_order() {
        let mut d = TermDict::new();
        for (i, t) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(d.intern(t), i as u32);
        }
        let collected: Vec<_> = d.iter().map(|(i, t)| (i, t.to_string())).collect();
        assert_eq!(collected[2], (2, "c".to_string()));
    }
}
