//! The typed message bus — the CORBA substitution.
//!
//! Topic-based publish/subscribe over crossbeam channels. Publishing
//! clones the envelope to every subscriber inbox; request/reply (used by
//! the media server) carries a reply sender inside the message, mirroring
//! CORBA's callback objects.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;

/// One image segment shipped over the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentBlob {
    /// Segment index within its image.
    pub index: usize,
    /// Rectangle in source coordinates.
    pub rect: (usize, usize, usize, usize),
    /// Encoded pixels ([`media::Image::to_blob`] format).
    pub blob: Vec<u8>,
}

/// Messages that flow between the parties of Figure 1.
#[derive(Debug, Clone)]
pub enum Message {
    /// A crawled image enters the system.
    ImageCrawled {
        /// Source URL.
        url: String,
        /// Encoded pixels.
        blob: Vec<u8>,
        /// Optional manual annotation.
        annotation: Option<String>,
    },
    /// An image was segmented.
    ImageSegmented {
        /// Source URL.
        url: String,
        /// The segments.
        segments: Vec<SegmentBlob>,
    },
    /// A feature vector was extracted from one segment.
    FeaturesExtracted {
        /// Source URL.
        url: String,
        /// Segment index.
        segment: usize,
        /// Feature-space name.
        space: String,
        /// The vector.
        vector: Vec<f64>,
    },
    /// Store a blob on the media server.
    StoreMedia {
        /// Key (URL).
        url: String,
        /// Payload.
        blob: Vec<u8>,
    },
    /// Fetch a blob from the media server; the reply sender receives
    /// `None` when the key is unknown.
    FetchMedia {
        /// Key (URL).
        url: String,
        /// Where to deliver the payload.
        reply: Sender<Option<Vec<u8>>>,
    },
    /// Ask the thesaurus daemon to expand a text query into visual terms
    /// (see [`crate::formulation`]).
    FormulateQuery(crate::formulation::FormulationRequest),
    /// Orderly shutdown of a daemon's thread.
    Shutdown,
}

/// A message plus its sender's name.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Name of the publishing party.
    pub from: String,
    /// The payload.
    pub msg: Message,
}

/// The topic-based bus.
#[derive(Default)]
pub struct Bus {
    topics: RwLock<HashMap<String, Vec<Sender<Envelope>>>>,
}

impl Bus {
    /// Create an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an existing inbox sender on a topic.
    pub fn attach(&self, topic: &str, inbox: Sender<Envelope>) {
        self.topics.write().entry(topic.to_string()).or_default().push(inbox);
    }

    /// Create a fresh subscription: returns the receiving end of a new
    /// inbox attached to `topic`.
    pub fn subscribe(&self, topic: &str) -> Receiver<Envelope> {
        let (tx, rx) = unbounded();
        self.attach(topic, tx);
        rx
    }

    /// Publish a message to all subscribers of a topic; returns the number
    /// of inboxes reached. Dead inboxes are pruned.
    pub fn publish(&self, topic: &str, from: &str, msg: Message) -> usize {
        let mut delivered = 0;
        let mut topics = self.topics.write();
        if let Some(subs) = topics.get_mut(topic) {
            subs.retain(|tx| {
                let ok = tx.send(Envelope { from: from.to_string(), msg: msg.clone() }).is_ok();
                if ok {
                    delivered += 1;
                }
                ok
            });
        }
        delivered
    }

    /// Number of live subscriptions on a topic.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.topics.read().get(topic).map_or(0, Vec::len)
    }

    /// All topics with at least one subscriber, sorted.
    pub fn topics(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .topics
            .read()
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(t, _)| t.clone())
            .collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus").field("topics", &self.topics()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_all_subscribers() {
        let bus = Bus::new();
        let a = bus.subscribe("t");
        let b = bus.subscribe("t");
        let n = bus.publish("t", "test", Message::Shutdown);
        assert_eq!(n, 2);
        assert!(matches!(a.recv().unwrap().msg, Message::Shutdown));
        assert!(matches!(b.recv().unwrap().msg, Message::Shutdown));
    }

    #[test]
    fn publish_to_empty_topic_is_zero() {
        let bus = Bus::new();
        assert_eq!(bus.publish("nobody", "x", Message::Shutdown), 0);
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let bus = Bus::new();
        {
            let _dropped = bus.subscribe("t");
        }
        let live = bus.subscribe("t");
        assert_eq!(bus.subscriber_count("t"), 2);
        let n = bus.publish("t", "x", Message::Shutdown);
        assert_eq!(n, 1);
        assert_eq!(bus.subscriber_count("t"), 1);
        assert!(live.try_recv().is_ok());
    }

    #[test]
    fn envelopes_carry_sender_names() {
        let bus = Bus::new();
        let rx = bus.subscribe("t");
        bus.publish(
            "t",
            "robot",
            Message::ImageCrawled { url: "u".into(), blob: vec![], annotation: None },
        );
        assert_eq!(rx.recv().unwrap().from, "robot");
    }

    #[test]
    fn request_reply_roundtrip() {
        let bus = Bus::new();
        let server_rx = bus.subscribe("media");
        let (reply_tx, reply_rx) = unbounded();
        bus.publish("media", "client", Message::FetchMedia { url: "k".into(), reply: reply_tx });
        // pretend to be the server
        if let Message::FetchMedia { reply, .. } = server_rx.recv().unwrap().msg {
            reply.send(Some(vec![1, 2, 3])).unwrap();
        }
        assert_eq!(reply_rx.recv().unwrap(), Some(vec![1, 2, 3]));
    }

    #[test]
    fn topics_listing() {
        let bus = Bus::new();
        let _a = bus.subscribe("b-topic");
        let _b = bus.subscribe("a-topic");
        assert_eq!(bus.topics(), vec!["a-topic".to_string(), "b-topic".to_string()]);
    }
}
