//! The standard extraction daemons of the demo system.

use crate::bus::{Bus, Envelope, Message, SegmentBlob};
use crate::runtime::Daemon;
use crate::{TOPIC_CRAWLED, TOPIC_FEATURES, TOPIC_SEGMENTED};
use media::{grid_segments, region_grow_segments, FeatureExtractor, Image};

/// Which segmentation algorithm a [`SegmenterDaemon`] runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmenterKind {
    /// `n × n` grid.
    Grid(usize),
    /// Region growing with a colour threshold.
    RegionGrow(f64),
}

/// The segmentation daemon: consumes crawled images, publishes segments.
pub struct SegmenterDaemon {
    kind: SegmenterKind,
}

impl SegmenterDaemon {
    /// Create a segmenter of the given kind.
    pub fn new(kind: SegmenterKind) -> Self {
        SegmenterDaemon { kind }
    }
}

impl Daemon for SegmenterDaemon {
    fn name(&self) -> String {
        "segmenter".to_string()
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![TOPIC_CRAWLED.to_string()]
    }

    fn handle(&mut self, envelope: Envelope, bus: &Bus) {
        let Message::ImageCrawled { url, blob, .. } = envelope.msg else { return };
        let Some(image) = Image::from_blob(&blob) else { return };
        let segments = match self.kind {
            SegmenterKind::Grid(n) => grid_segments(&image, n),
            SegmenterKind::RegionGrow(t) => region_grow_segments(&image, t),
        };
        let blobs: Vec<SegmentBlob> = segments
            .iter()
            .enumerate()
            .map(|(i, s)| SegmentBlob {
                index: i,
                rect: (s.x, s.y, s.w, s.h),
                blob: s.image.to_blob(),
            })
            .collect();
        bus.publish(
            TOPIC_SEGMENTED,
            &self.name(),
            Message::ImageSegmented { url, segments: blobs },
        );
    }
}

/// A feature-extraction daemon wrapping one [`FeatureExtractor`]. Several
/// run "independently" in the demo — one per feature space.
pub struct FeatureDaemon {
    extractor: Box<dyn FeatureExtractor>,
}

impl FeatureDaemon {
    /// Wrap an extractor.
    pub fn new(extractor: Box<dyn FeatureExtractor>) -> Self {
        FeatureDaemon { extractor }
    }
}

impl Daemon for FeatureDaemon {
    fn name(&self) -> String {
        format!("feature-{}", self.extractor.space())
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![TOPIC_SEGMENTED.to_string()]
    }

    fn handle(&mut self, envelope: Envelope, bus: &Bus) {
        let Message::ImageSegmented { url, segments } = envelope.msg else { return };
        for seg in &segments {
            let Some(image) = Image::from_blob(&seg.blob) else { continue };
            let vector = self.extractor.extract(&image);
            bus.publish(
                TOPIC_FEATURES,
                &self.name(),
                Message::FeaturesExtracted {
                    url: url.clone(),
                    segment: seg.index,
                    space: self.extractor.space().to_string(),
                    vector: vector.into_values(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::DaemonRuntime;
    use media::color::RgbHistogram;
    use std::time::Duration;

    fn crawl_one(rt: &DaemonRuntime) {
        let img = Image::filled(16, 16, [200, 40, 40]);
        rt.bus().publish(
            TOPIC_CRAWLED,
            "robot",
            Message::ImageCrawled {
                url: "http://x/0.png".into(),
                blob: img.to_blob(),
                annotation: Some("red square".into()),
            },
        );
    }

    #[test]
    fn segmenter_produces_grid_segments() {
        let rt = DaemonRuntime::new();
        let seg_rx = rt.bus().subscribe(TOPIC_SEGMENTED);
        rt.spawn(Box::new(SegmenterDaemon::new(SegmenterKind::Grid(2))));
        crawl_one(&rt);
        let env = seg_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let Message::ImageSegmented { segments, url } = env.msg else { panic!() };
        assert_eq!(url, "http://x/0.png");
        assert_eq!(segments.len(), 4);
        assert_eq!(segments[3].rect, (8, 8, 8, 8));
        rt.shutdown();
    }

    #[test]
    fn feature_daemon_emits_one_vector_per_segment() {
        let rt = DaemonRuntime::new();
        let feat_rx = rt.bus().subscribe(TOPIC_FEATURES);
        rt.spawn(Box::new(SegmenterDaemon::new(SegmenterKind::Grid(2))));
        rt.spawn(Box::new(FeatureDaemon::new(Box::new(RgbHistogram::default()))));
        crawl_one(&rt);
        let mut got = Vec::new();
        while let Ok(env) = feat_rx.recv_timeout(Duration::from_millis(800)) {
            if let Message::FeaturesExtracted { segment, space, vector, .. } = env.msg {
                assert_eq!(space, "rgb");
                assert_eq!(vector.len(), 64);
                got.push(segment);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        rt.shutdown();
    }

    #[test]
    fn region_grow_segmenter_works_through_bus() {
        let rt = DaemonRuntime::new();
        let seg_rx = rt.bus().subscribe(TOPIC_SEGMENTED);
        rt.spawn(Box::new(SegmenterDaemon::new(SegmenterKind::RegionGrow(15.0))));
        crawl_one(&rt); // uniform image → one region
        let env = seg_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let Message::ImageSegmented { segments, .. } = env.msg else { panic!() };
        assert_eq!(segments.len(), 1);
        rt.shutdown();
    }

    #[test]
    fn malformed_blobs_are_ignored() {
        let rt = DaemonRuntime::new();
        let seg_rx = rt.bus().subscribe(TOPIC_SEGMENTED);
        rt.spawn(Box::new(SegmenterDaemon::new(SegmenterKind::Grid(2))));
        rt.bus().publish(
            TOPIC_CRAWLED,
            "robot",
            Message::ImageCrawled { url: "bad".into(), blob: vec![1, 2], annotation: None },
        );
        assert!(seg_rx.recv_timeout(Duration::from_millis(300)).is_err());
        rt.shutdown();
    }
}
