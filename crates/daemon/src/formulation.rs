//! The query-formulation daemon.
//!
//! "Furthermore, we have thesaurus daemons that are interactively used
//! during query formulation" (§5.1): a client sends raw query text; the
//! daemon answers with the expanded, weighted visual-term query derived
//! from the association thesaurus. Keeping formulation on the bus means a
//! different thesaurus (or a human-in-the-loop one) can replace it without
//! touching the retrieval engine.

use crate::bus::{Bus, Envelope, Message};
use crate::runtime::Daemon;
use crossbeam::channel::Sender;

/// Topic carrying query-formulation requests.
pub const TOPIC_FORMULATE: &str = "query.formulate";

/// Request/reply payloads ride inside `Message::FormulateQuery`-shaped
/// envelopes; to avoid widening the core message enum for every daemon,
/// formulation reuses `FetchMedia`'s request/reply idiom with its own
/// message type below.
#[derive(Debug, Clone)]
pub struct FormulationRequest {
    /// Raw user text.
    pub text: String,
    /// Maximum visual terms to return.
    pub max_terms: usize,
    /// Where to deliver the expansion.
    pub reply: Sender<Vec<(String, f64)>>,
}

/// A thesaurus daemon answering formulation requests.
pub struct ThesaurusDaemon {
    thesaurus: thesaurus::AssociationThesaurus,
    per_term: usize,
}

impl ThesaurusDaemon {
    /// Wrap a mined thesaurus.
    pub fn new(thesaurus: thesaurus::AssociationThesaurus, per_term: usize) -> Self {
        ThesaurusDaemon { thesaurus, per_term }
    }
}

impl Daemon for ThesaurusDaemon {
    fn name(&self) -> String {
        "thesaurus".to_string()
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![TOPIC_FORMULATE.to_string()]
    }

    fn handle(&mut self, envelope: Envelope, _bus: &Bus) {
        let Message::FormulateQuery(req) = envelope.msg else { return };
        let terms: Vec<(String, f64)> =
            ir::text::tokenize_stemmed(&req.text).into_iter().map(|t| (t, 1.0)).collect();
        let expansion = self.thesaurus.expand(&terms, self.per_term, req.max_terms);
        let _ = req.reply.send(expansion);
    }
}

/// Client helper: formulate a query through the bus.
pub fn formulate(
    bus: &Bus,
    text: &str,
    max_terms: usize,
    timeout: std::time::Duration,
) -> Option<Vec<(String, f64)>> {
    let (tx, rx) = crossbeam::channel::bounded(1);
    bus.publish(
        TOPIC_FORMULATE,
        "client",
        Message::FormulateQuery(FormulationRequest {
            text: text.to_string(),
            max_terms,
            reply: tx,
        }),
    );
    rx.recv_timeout(timeout).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::DaemonRuntime;
    use std::time::Duration;
    use thesaurus::{AssocMeasure, ThesaurusBuilder};

    fn mined() -> thesaurus::AssociationThesaurus {
        let mut b = ThesaurusBuilder::new();
        for _ in 0..8 {
            b.add_document(&["sunset", "glow"], &["rgb_0", "gabor_2"]);
            b.add_document(&["forest"], &["rgb_1"]);
        }
        b.build(AssocMeasure::Emim)
    }

    #[test]
    fn daemon_expands_queries_over_the_bus() {
        let rt = DaemonRuntime::new();
        rt.spawn(Box::new(ThesaurusDaemon::new(mined(), 3)));
        let exp = formulate(rt.bus(), "glowing sunset", 5, Duration::from_secs(2))
            .expect("formulation reply");
        assert!(!exp.is_empty());
        assert!(exp.iter().any(|(v, _)| v == "rgb_0" || v == "gabor_2"), "{exp:?}");
        rt.shutdown();
    }

    #[test]
    fn unknown_vocabulary_yields_empty_expansion() {
        let rt = DaemonRuntime::new();
        rt.spawn(Box::new(ThesaurusDaemon::new(mined(), 3)));
        let exp = formulate(rt.bus(), "xylophone", 5, Duration::from_secs(2)).unwrap();
        assert!(exp.is_empty());
        rt.shutdown();
    }

    #[test]
    fn no_daemon_means_no_reply() {
        let bus = Bus::new();
        let exp = formulate(&bus, "sunset", 5, Duration::from_millis(100));
        assert!(exp.is_none());
    }
}
