//! Daemon lifecycle: spawn, run, count, shut down.

use crate::bus::{Bus, Envelope, Message};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A party on the bus. Daemons receive every envelope published to any of
/// their subscribed topics, in arrival order, on their own thread.
pub trait Daemon: Send {
    /// Unique daemon name (appears as the `from` of its publications).
    fn name(&self) -> String;
    /// Topics this daemon subscribes to.
    fn subscriptions(&self) -> Vec<String>;
    /// Handle one envelope; publish results through `bus`.
    fn handle(&mut self, envelope: Envelope, bus: &Bus);
}

/// A running daemon: its name, direct inbox, and thread handle.
type DaemonHandle = (String, Sender<Envelope>, JoinHandle<()>);

/// Owns the bus and the daemon threads.
pub struct DaemonRuntime {
    bus: Arc<Bus>,
    daemons: Mutex<Vec<DaemonHandle>>,
    processed: Mutex<HashMap<String, Arc<AtomicU64>>>,
}

impl DaemonRuntime {
    /// Create a runtime with a fresh bus.
    pub fn new() -> Self {
        DaemonRuntime {
            bus: Arc::new(Bus::new()),
            daemons: Mutex::new(Vec::new()),
            processed: Mutex::new(HashMap::new()),
        }
    }

    /// The shared bus.
    pub fn bus(&self) -> &Arc<Bus> {
        &self.bus
    }

    /// Attach a daemon: create its inbox, subscribe it to its topics, and
    /// start its thread. Daemons can be attached at any time — this is the
    /// paper's run-time extensibility.
    pub fn spawn(&self, mut daemon: Box<dyn Daemon>) -> String {
        let name = daemon.name();
        let (tx, rx) = unbounded::<Envelope>();
        for topic in daemon.subscriptions() {
            self.bus.attach(&topic, tx.clone());
        }
        let counter = Arc::new(AtomicU64::new(0));
        self.processed.lock().insert(name.clone(), Arc::clone(&counter));
        let bus = Arc::clone(&self.bus);
        let handle = std::thread::spawn(move || {
            while let Ok(env) = rx.recv() {
                if matches!(env.msg, Message::Shutdown) {
                    break;
                }
                daemon.handle(env, &bus);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        self.daemons.lock().push((name.clone(), tx, handle));
        name
    }

    /// Names of running daemons.
    pub fn daemon_names(&self) -> Vec<String> {
        self.daemons.lock().iter().map(|(n, _, _)| n.clone()).collect()
    }

    /// Messages processed per daemon.
    pub fn processed_counts(&self) -> HashMap<String, u64> {
        self.processed.lock().iter().map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed))).collect()
    }

    /// Total messages processed across all daemons.
    pub fn total_processed(&self) -> u64 {
        self.processed.lock().values().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Send `Shutdown` to every daemon inbox and join the threads. The
    /// runtime can keep being used afterwards (daemons list is emptied).
    pub fn shutdown(&self) {
        let mut daemons = self.daemons.lock();
        for (name, tx, _) in daemons.iter() {
            let _ = tx.send(Envelope { from: "runtime".into(), msg: Message::Shutdown });
            let _ = name;
        }
        for (_, _, handle) in daemons.drain(..) {
            let _ = handle.join();
        }
    }

    /// Block until the whole pipeline is quiescent: no daemon processed a
    /// new message for `quiet` consecutive polls. A pragmatic barrier for
    /// tests and benchmarks (the real system is openly asynchronous).
    pub fn wait_quiescent(&self, poll: std::time::Duration, quiet: usize) {
        let mut last = self.total_processed();
        let mut stable = 0;
        while stable < quiet {
            std::thread::sleep(poll);
            let now = self.total_processed();
            if now == last {
                stable += 1;
            } else {
                stable = 0;
                last = now;
            }
        }
    }
}

impl Default for DaemonRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for DaemonRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Echoes every crawled image back as a segmented message.
    struct Echo {
        id: usize,
    }

    impl Daemon for Echo {
        fn name(&self) -> String {
            format!("echo-{}", self.id)
        }

        fn subscriptions(&self) -> Vec<String> {
            vec!["in".to_string()]
        }

        fn handle(&mut self, envelope: Envelope, bus: &Bus) {
            if let Message::ImageCrawled { url, .. } = envelope.msg {
                bus.publish("out", &self.name(), Message::ImageSegmented { url, segments: vec![] });
            }
        }
    }

    #[test]
    fn daemon_processes_and_publishes() {
        let rt = DaemonRuntime::new();
        let out = rt.bus().subscribe("out");
        rt.spawn(Box::new(Echo { id: 0 }));
        rt.bus().publish(
            "in",
            "test",
            Message::ImageCrawled { url: "u1".into(), blob: vec![], annotation: None },
        );
        let env = out.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(matches!(env.msg, Message::ImageSegmented { .. }));
        assert_eq!(env.from, "echo-0");
        rt.shutdown();
        assert_eq!(rt.processed_counts()["echo-0"], 1);
    }

    #[test]
    fn daemons_can_be_added_at_runtime() {
        let rt = DaemonRuntime::new();
        let out = rt.bus().subscribe("out");
        rt.spawn(Box::new(Echo { id: 0 }));
        rt.bus().publish(
            "in",
            "t",
            Message::ImageCrawled { url: "a".into(), blob: vec![], annotation: None },
        );
        let _ = out.recv_timeout(Duration::from_secs(2)).unwrap();
        // attach a second daemon while the system is live
        rt.spawn(Box::new(Echo { id: 1 }));
        assert_eq!(rt.daemon_names().len(), 2);
        rt.bus().publish(
            "in",
            "t",
            Message::ImageCrawled { url: "b".into(), blob: vec![], annotation: None },
        );
        // both daemons now answer → two publications for the second image
        let mut got = 0;
        while out.recv_timeout(Duration::from_millis(500)).is_ok() {
            got += 1;
        }
        assert_eq!(got, 2);
        rt.shutdown();
    }

    #[test]
    fn shutdown_joins_threads() {
        let rt = DaemonRuntime::new();
        rt.spawn(Box::new(Echo { id: 7 }));
        rt.shutdown();
        assert!(rt.daemon_names().is_empty());
        // idempotent
        rt.shutdown();
    }

    #[test]
    fn quiescence_barrier_settles() {
        let rt = DaemonRuntime::new();
        rt.spawn(Box::new(Echo { id: 0 }));
        for i in 0..5 {
            rt.bus().publish(
                "in",
                "t",
                Message::ImageCrawled { url: format!("u{i}"), blob: vec![], annotation: None },
            );
        }
        rt.wait_quiescent(Duration::from_millis(10), 3);
        assert_eq!(rt.processed_counts()["echo-0"], 5);
        rt.shutdown();
    }
}
