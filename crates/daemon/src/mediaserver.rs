//! The media server of Figure 1 — "the media server is a web server".
//!
//! A keyed blob store behind the bus: content representations live in the
//! metadata database; the footage itself is served by URL on demand.

use crate::bus::{Bus, Envelope, Message};
use crate::runtime::Daemon;
use crate::TOPIC_MEDIA;
use std::collections::HashMap;

/// The media-server daemon.
#[derive(Default)]
pub struct MediaServer {
    store: HashMap<String, Vec<u8>>,
}

impl MediaServer {
    /// Create an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored blobs (for monitoring).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

impl Daemon for MediaServer {
    fn name(&self) -> String {
        "media-server".to_string()
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![TOPIC_MEDIA.to_string()]
    }

    fn handle(&mut self, envelope: Envelope, _bus: &Bus) {
        match envelope.msg {
            Message::StoreMedia { url, blob } => {
                self.store.insert(url, blob);
            }
            Message::FetchMedia { url, reply } => {
                let _ = reply.send(self.store.get(&url).cloned());
            }
            _ => {}
        }
    }
}

/// Client helper: fetch a blob through the bus, blocking up to `timeout`.
pub fn fetch_media(bus: &Bus, url: &str, timeout: std::time::Duration) -> Option<Vec<u8>> {
    let (tx, rx) = crossbeam::channel::bounded(1);
    bus.publish(TOPIC_MEDIA, "client", Message::FetchMedia { url: url.to_string(), reply: tx });
    rx.recv_timeout(timeout).ok().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::DaemonRuntime;
    use std::time::Duration;

    #[test]
    fn store_and_fetch_roundtrip() {
        let rt = DaemonRuntime::new();
        rt.spawn(Box::new(MediaServer::new()));
        rt.bus().publish(
            TOPIC_MEDIA,
            "ingest",
            Message::StoreMedia { url: "http://x/1".into(), blob: vec![7, 8, 9] },
        );
        let got = fetch_media(rt.bus(), "http://x/1", Duration::from_secs(2));
        assert_eq!(got, Some(vec![7, 8, 9]));
        rt.shutdown();
    }

    #[test]
    fn fetch_unknown_returns_none() {
        let rt = DaemonRuntime::new();
        rt.spawn(Box::new(MediaServer::new()));
        let got = fetch_media(rt.bus(), "http://nope", Duration::from_secs(2));
        assert_eq!(got, None);
        rt.shutdown();
    }

    #[test]
    fn store_overwrites() {
        let rt = DaemonRuntime::new();
        rt.spawn(Box::new(MediaServer::new()));
        for v in [vec![1], vec![2]] {
            rt.bus().publish(
                TOPIC_MEDIA,
                "ingest",
                Message::StoreMedia { url: "k".into(), blob: v },
            );
        }
        let got = fetch_media(rt.bus(), "k", Duration::from_secs(2));
        assert_eq!(got, Some(vec![2]));
        rt.shutdown();
    }
}
