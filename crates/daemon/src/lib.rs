//! # daemon — the open distributed architecture (Figure 1)
//!
//! The Mirror architecture is deliberately *not* a monolithic DBMS: "a
//! digital library can only be a success if it follows the model of the
//! web". Daemons — human annotators, automatic meta-data extractors,
//! query-formulation helpers — run independently of the metadata database
//! and communicate through CORBA in the paper. Offline we substitute an
//! in-process, typed message bus with one thread per daemon, preserving
//! the properties the paper actually claims:
//!
//! * **decoupling** — daemons know topics, not each other;
//! * **independence** — each daemon runs on its own thread at its own
//!   pace; the metadata database is just another party on the bus;
//! * **extensibility** — daemons can be attached (and detached) at run
//!   time without touching the rest of the system (exercised by E5).
//!
//! Modules: [`bus`] (topics, envelopes, publish/subscribe), [`runtime`]
//! (daemon lifecycle), [`daemons`] (segmenter + feature extractors),
//! [`mediaserver`] (the blob store of Figure 1).

#![warn(missing_docs)]

pub mod bus;
pub mod daemons;
pub mod formulation;
pub mod mediaserver;
pub mod runtime;

pub use bus::{Bus, Envelope, Message, SegmentBlob};
pub use daemons::{FeatureDaemon, SegmenterDaemon, SegmenterKind};
pub use formulation::{formulate, ThesaurusDaemon, TOPIC_FORMULATE};
pub use mediaserver::MediaServer;
pub use runtime::{Daemon, DaemonRuntime};

/// Topic carrying freshly crawled images.
pub const TOPIC_CRAWLED: &str = "image.crawled";
/// Topic carrying segmentation results.
pub const TOPIC_SEGMENTED: &str = "image.segmented";
/// Topic carrying extracted feature vectors.
pub const TOPIC_FEATURES: &str = "features.extracted";
/// Topic carrying media-server requests.
pub const TOPIC_MEDIA: &str = "media.request";
