//! Property tests for the statistics-driven optimizer pass pipeline
//! (`moa::opt`): for any query, any top-k budget in {1, 10, all}, and any
//! shard count in {1, 2, 4}, the optimized pipeline must return results
//! bit-identical to the unoptimized plan (`OptConfig::none()`) — same
//! documents, same float scores, same tie-breaks. The passes are allowed
//! to change *how* a plan runs (selection ordering, semijoin placement,
//! top-k fusion, parallel-degree capping), never *what* it returns.

use mirror::core::serve::RetrievalRequest;
use mirror::core::shard::MirrorCluster;
use mirror::core::{MirrorDbms, Retriever};
use mirror::media::{CrawledImage, RobotConfig, WebRobot};
use mirror::moa::OptConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Words the WebRobot corpus annotates with, plus some that miss.
const POOL: &[&str] = &[
    "sunset", "ocean", "forest", "city", "desert", "snow", "glow", "wave", "tree", "dune",
    "zeppelin", "quartz",
];

const FILTERS: &[&str] = &["/sunset/", "/ocean/", "1", "png"];

struct Fixture {
    corpus: Vec<CrawledImage>,
    /// Reference node: every optimizer switch off.
    unopt: MirrorDbms,
    /// Same corpus with the full stats-driven pipeline on.
    opt: MirrorDbms,
    clusters: Vec<MirrorCluster>,
    n_docs: usize,
    visual_terms: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let corpus = WebRobot::new(RobotConfig {
            n_images: 48,
            image_size: 24,
            unannotated_fraction: 0.25,
            seed: 17,
        })
        .crawl();
        let mut base = MirrorDbms::with_defaults();
        base.ingest(&corpus).unwrap();
        let rows = base.library_rows().to_vec();
        let vocab = base.vocabulary().cloned();
        let thes = base.thesaurus().cloned();
        let visual_terms = rows
            .iter()
            .find(|r| !r.vterms.is_empty())
            .map(|r| r.vterms.split_whitespace().take(3).map(String::from).collect())
            .unwrap_or_default();
        let opt =
            MirrorDbms::from_rows(base.config().clone(), rows.clone(), vocab.clone(), thes.clone())
                .unwrap();
        let mut unopt = MirrorDbms::from_rows(base.config().clone(), rows, vocab, thes).unwrap();
        unopt.set_opt(OptConfig::none());
        let clusters = [1usize, 2, 4]
            .map(|s| MirrorCluster::build(&corpus, s, 1).unwrap())
            .into_iter()
            .collect();
        let n_docs = base.n_docs();
        Fixture { corpus, unopt, opt, clusters, n_docs, visual_terms }
    })
}

/// Requests spanning every serving shape the optimizer touches.
fn requests(
    f: &Fixture,
    terms: &[(String, f64)],
    k: usize,
    filter: Option<&str>,
) -> Vec<RetrievalRequest> {
    let text = terms.to_vec();
    let joined = terms.iter().map(|(t, _)| t.as_str()).collect::<Vec<_>>().join(" ");
    let mut reqs = vec![
        RetrievalRequest::text_terms(text.clone(), k),
        RetrievalRequest::dual(&joined, 0.4, k),
        RetrievalRequest::dual_terms(
            text.clone(),
            f.visual_terms.iter().map(|t| (t.clone(), 1.0)).collect(),
            0.5,
            k,
        ),
    ];
    if let Some(pattern) = filter {
        reqs.push(RetrievalRequest::text_terms(text, k).with_filter(pattern));
    }
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Optimized single node and every cluster width return exactly the
    /// unoptimized reference for every request shape and k.
    #[test]
    fn prop_pass_pipeline_is_bit_identical_to_unoptimized(
        query in proptest::collection::vec((0usize..POOL.len(), 0.25f64..2.0), 1..4),
        // FILTERS.len() encodes "no filter" (vendored proptest has no option::of)
        filter_idx in 0usize..=FILTERS.len(),
    ) {
        let f = fixture();
        let terms: Vec<(String, f64)> =
            query.iter().map(|(w, wt)| (POOL[w % POOL.len()].to_string(), *wt)).collect();
        let filter = FILTERS.get(filter_idx).copied();
        for k in [1usize, 10, f.n_docs] {
            for req in requests(f, &terms, k, filter) {
                let expected = f.unopt.retrieve(&req).unwrap();
                let got = f.opt.retrieve(&req).unwrap();
                prop_assert_eq!(&got, &expected, "single node diverged, k={} req={:?}", k, req);
                for cluster in &f.clusters {
                    let got = cluster.retrieve(&req).unwrap();
                    prop_assert_eq!(
                        &got, &expected,
                        "{}-shard cluster diverged, k={} req={:?}", cluster.n_shards(), k, req
                    );
                }
            }
        }
    }
}

/// The acceptance-criterion EXPLAIN: on a real query the stats-driven
/// pipeline visibly changes the plan — `selection_order` reorders a
/// conjunctive filter chain so the 1/NDV equality filter runs before the
/// flat-selectivity contains filters — and every operator is annotated
/// with estimated (`est≈`) next to actual (`rows=`) cardinalities. The
/// `OptConfig::none()` engine keeps the parse-order chain and shows no
/// estimates.
#[test]
fn explain_shows_stats_driven_plan_change_on_real_query() {
    let f = fixture();
    // a URL that exists in the ingested corpus, so the equality filter is
    // a genuine point lookup, not a guaranteed-empty predicate
    let url = &f.corpus[0].url;
    let src = format!(
        "map[sum(THIS)](map[getBL(THIS.annotation, pq, stats)](\
         select[contains(THIS.source, \"http\") and contains(THIS.source, \"png\") \
         and THIS.source = \"{url}\"](ImageLibraryInternal)))"
    );
    let params = mirror::moa::QueryParams::new()
        .bind("pq", vec![("sunset".to_string(), 1.0), ("ocean".to_string(), 1.0)])
        .with_top_k(10);
    let analyzed = f.opt.engine().explain_analyze(&src, &params).unwrap();
    // the stats-driven ordering pass rewrote the filter chain…
    assert!(analyzed.contains("selection_order"), "selection_order did not fire:\n{analyzed}");
    // …the ranking still fused into the streaming top-k operator…
    assert!(analyzed.contains("contrep.getbl.topk"), "top-k not fused:\n{analyzed}");
    // …and every operator carries estimated-vs-actual cardinalities
    assert!(analyzed.contains("est≈"), "no cardinality estimates:\n{analyzed}");
    assert!(analyzed.contains("rows="), "no actual row counts:\n{analyzed}");

    // the unoptimized engine keeps parse order and shows no estimates
    // (legacy top-k fusion is deliberately part of the none() baseline)
    let plain = f.unopt.engine().explain_analyze(&src, &params).unwrap();
    assert!(!plain.contains("selection_order"), "none() engine reordered:\n{plain}");
    assert!(!plain.contains("est≈"), "none() engine estimated:\n{plain}");
}

/// Late filtering — `select[row-pred]` *outside* the ranking map — is
/// pushed down and fused by the optimizing engine; the `none()` engine
/// executes the literal late shape (score everything, then semijoin).
/// Results are bit-identical either way (the property test above), but the
/// plans differ structurally.
#[test]
fn explain_shows_late_filter_pushdown_and_fusion() {
    let f = fixture();
    let src = "select[contains(THIS.source, \"1\")](map[sum(THIS)](\
               map[getBL(THIS.annotation, pq, stats)](ImageLibraryInternal)))";
    let params = mirror::moa::QueryParams::new()
        .bind("pq", vec![("sunset".to_string(), 1.0), ("ocean".to_string(), 1.0)])
        .with_top_k(10);
    let analyzed = f.opt.engine().explain_analyze(src, &params).unwrap();
    assert!(analyzed.contains("contrep.getbl.topk"), "late filter not fused:\n{analyzed}");
    assert!(analyzed.contains("est≈"), "no cardinality estimates:\n{analyzed}");

    let plain = f.unopt.engine().explain_analyze(src, &params).unwrap();
    assert!(!plain.contains("contrep.getbl.topk"), "none() engine fused:\n{plain}");
    assert!(plain.contains("semijoin"), "none() engine lost the late semijoin:\n{plain}");
}
