//! Property tests for fragmented parallel execution: for random BATs and
//! predicates, the fragment-parallel operators and the parallel plan
//! executor must be **value-identical** to the serial path at parallelism
//! degrees 1, 2 and 7.
//!
//! Floating-point inputs are drawn as integer-valued `f64`s so that
//! partial-sum merging is exactly associative and equality can be exact —
//! the same contract the kernel documents for bit-identical results
//! (general float sums may differ in the last ulp between serial and
//! fragmented evaluation, like any parallel DBMS).

use mirror::monet::fragment;
use mirror::monet::{
    bat::{bat_of_floats, bat_of_ints},
    Agg, Bat, Catalog, Column, Executor, OpRegistry, Plan, Pred, Val,
};
use proptest::prelude::*;

/// Degrees the satellite task pins: serial, even split, odd split larger
/// than the fragment count of most generated inputs.
const DEGREES: &[usize] = &[1, 2, 7];

/// Run a plan serially.
fn run_serial(cat: &Catalog, plan: &Plan) -> Vec<(Val, Val)> {
    let reg = OpRegistry::new();
    Executor::new(cat, &reg).run_bat(plan).expect("serial run").to_pairs()
}

/// Run a plan with fragmentation forced on (threshold 1) at `degree`.
fn run_parallel(cat: &Catalog, plan: &Plan, degree: usize) -> Vec<(Val, Val)> {
    let reg = OpRegistry::new();
    let mut ex = Executor::new(cat, &reg);
    ex.degree = degree;
    ex.min_fragment_rows = 1;
    ex.run_bat(plan).expect("parallel run").to_pairs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fragment bounds partition the row range exactly.
    #[test]
    fn prop_bounds_partition(rows in 0usize..5000, degree in 1usize..16) {
        let bs = fragment::bounds(rows, degree);
        prop_assert!(bs.len() <= degree);
        let mut expected_lo = 0usize;
        for &(lo, hi) in &bs {
            prop_assert_eq!(lo, expected_lo);
            prop_assert!(hi > lo, "empty fragment [{}, {})", lo, hi);
            expected_lo = hi;
        }
        prop_assert_eq!(expected_lo, rows);
    }

    /// Parallel select (eq + range, random inclusivity) == serial select.
    #[test]
    fn prop_par_select_int_identical(
        vals in proptest::collection::vec(-50i64..50, 0..400),
        lo in -60i64..60,
        width in 0i64..80,
        lo_incl in proptest::strategy::Just(true),
        hi_incl in proptest::strategy::Just(false),
    ) {
        let cat = Catalog::new();
        cat.register("b", bat_of_ints(vals));
        let preds = [
            Pred::Eq(Val::Int(lo)),
            Pred::Range {
                lo: Some(Val::Int(lo)),
                lo_incl,
                hi: Some(Val::Int(lo + width)),
                hi_incl,
            },
            Pred::Range { lo: None, lo_incl: true, hi: Some(Val::Int(lo)), hi_incl: true },
        ];
        for pred in preds {
            let plan = Plan::Select { input: Box::new(Plan::load("b")), pred };
            let serial = run_serial(&cat, &plan);
            for &d in DEGREES {
                prop_assert_eq!(&run_parallel(&cat, &plan, d), &serial, "degree {}", d);
            }
        }
    }

    /// Parallel select over float tails == serial (integer-valued floats).
    #[test]
    fn prop_par_select_float_identical(
        vals in proptest::collection::vec(-100i64..100, 0..300),
        lo in -100i64..100,
        width in 0i64..100,
    ) {
        let cat = Catalog::new();
        cat.register("b", bat_of_floats(vals.iter().map(|&x| x as f64).collect()));
        let plan = Plan::Select {
            input: Box::new(Plan::load("b")),
            pred: Pred::Range {
                lo: Some(Val::Float(lo as f64)),
                lo_incl: false,
                hi: Some(Val::Float((lo + width) as f64)),
                hi_incl: true,
            },
        };
        let serial = run_serial(&cat, &plan);
        for &d in DEGREES {
            prop_assert_eq!(&run_parallel(&cat, &plan, d), &serial, "degree {}", d);
        }
    }

    /// Parallel select over string tails == serial.
    #[test]
    fn prop_par_select_str_identical(
        words in proptest::collection::vec("[ab]{1,4}", 0..200),
        pat in "[ab]{1,2}",
    ) {
        let cat = Catalog::new();
        cat.register("b", mirror::monet::bat::bat_of_strs(words.iter().map(String::as_str)));
        let plan = Plan::Select {
            input: Box::new(Plan::load("b")),
            pred: Pred::StrContains(pat),
        };
        let serial = run_serial(&cat, &plan);
        for &d in DEGREES {
            prop_assert_eq!(&run_parallel(&cat, &plan, d), &serial, "degree {}", d);
        }
    }

    /// Parallel join (probe side fragmented) == serial join, on both the
    /// positional fetch path (dense build head) and the hash path
    /// (materialised build head with duplicates).
    #[test]
    fn prop_par_join_identical(
        probe in proptest::collection::vec(0u32..60, 0..300),
        build_heads in proptest::collection::vec(0u32..60, 0..120),
    ) {
        let cat = Catalog::new();
        let nb = build_heads.len();
        cat.register("probe", Bat::dense(Column::Oid(probe)));
        cat.register("fetch_side", bat_of_ints((0..40).collect()));
        cat.register(
            "hash_side",
            Bat::new(Column::Oid(build_heads), Column::void(500, nb)).unwrap(),
        );
        for right in ["fetch_side", "hash_side"] {
            let plan = Plan::Join {
                left: Box::new(Plan::load("probe")),
                right: Box::new(Plan::load(right)),
            };
            let serial = run_serial(&cat, &plan);
            for &d in DEGREES {
                prop_assert_eq!(&run_parallel(&cat, &plan, d), &serial, "{} degree {}", right, d);
            }
        }
    }

    /// Parallel scalar aggregation (partial + merge) == serial for every
    /// aggregate kind, over int and integer-valued float tails.
    #[test]
    fn prop_par_aggr_identical(
        ints in proptest::collection::vec(-1000i64..1000, 1..500),
    ) {
        let cat = Catalog::new();
        cat.register("ints", bat_of_ints(ints.clone()));
        cat.register("floats", bat_of_floats(ints.iter().map(|&x| x as f64).collect()));
        for name in ["ints", "floats"] {
            for agg in [Agg::Sum, Agg::Count, Agg::Min, Agg::Max, Agg::Avg] {
                let plan = Plan::Aggr { input: Box::new(Plan::load(name)), agg };
                let serial = run_serial(&cat, &plan);
                for &d in DEGREES {
                    prop_assert_eq!(
                        &run_parallel(&cat, &plan, d), &serial,
                        "{} {} degree {}", name, agg, d
                    );
                }
            }
        }
    }

    /// Parallel grouped aggregation == serial for every aggregate kind
    /// (Sum/Count merge partials; the rest transparently fall back).
    #[test]
    fn prop_par_grouped_aggr_identical(
        vals in proptest::collection::vec(-100i64..100, 0..300),
        n_groups in 1u32..9,
    ) {
        let cat = Catalog::new();
        let gids: Vec<u32> = (0..vals.len() as u32).map(|i| (i * 7 + 3) % n_groups).collect();
        cat.register("vals", bat_of_ints(vals));
        cat.register("groups", Bat::dense(Column::Oid(gids)));
        for agg in [Agg::Sum, Agg::Count, Agg::Min, Agg::Max, Agg::Avg] {
            let plan = Plan::GroupedAggr {
                values: Box::new(Plan::load("vals")),
                groups: Box::new(Plan::load("groups")),
                agg,
            };
            let serial = run_serial(&cat, &plan);
            for &d in DEGREES {
                prop_assert_eq!(&run_parallel(&cat, &plan, d), &serial, "{} degree {}", agg, d);
            }
        }
    }

    /// Fragment-wise constant projection and mark == serial. Both are
    /// kernel-level helpers (the interpreter keeps them serial because
    /// constant/void fills are pure memory bandwidth); check them directly.
    #[test]
    fn prop_par_project_mark_identical(
        vals in proptest::collection::vec(0i64..100, 0..300),
        base in 0u32..1000,
    ) {
        let cat = Catalog::new();
        cat.register("b", bat_of_ints(vals));
        let b = cat.get("b").unwrap();
        let serial_project = b.project(&Val::Float(0.5)).unwrap().to_pairs();
        let serial_mark = b.mark(base).to_pairs();
        for &d in DEGREES {
            prop_assert_eq!(
                fragment::par_project(&b, &Val::Float(0.5), d).unwrap().to_pairs(),
                serial_project.clone(),
                "project degree {}", d
            );
            prop_assert_eq!(
                fragment::par_mark(&b, base, d).unwrap().to_pairs(),
                serial_mark.clone(),
                "mark degree {}", d
            );
        }
        // the interpreter's ProjectConst node stays serial at any degree
        let plan = Plan::ProjectConst {
            input: Box::new(Plan::load("b")),
            val: Val::Float(0.5),
        };
        let serial = run_serial(&cat, &plan);
        for &d in DEGREES {
            prop_assert_eq!(&run_parallel(&cat, &plan, d), &serial, "plan degree {}", d);
        }
    }
}
