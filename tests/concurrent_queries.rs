//! Concurrency stress: one shared `MirrorDbms` snapshot under ≥ 8 threads
//! of mixed facade queries must produce exactly the single-threaded
//! results — possible because the typed serving path carries its bindings
//! as request-scoped `QueryParams` and never writes to the shared `Env`.

use mirror::core::query::RankedResult;
use mirror::core::serve::{MirrorServer, RetrievalRequest};
use mirror::core::{MirrorConfig, MirrorDbms, Retriever};
use mirror::media::{RobotConfig, WebRobot};
use std::sync::{Arc, OnceLock};

/// Compile-time proof that the snapshot and the server cross threads.
#[allow(dead_code)]
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn facade_types_are_send_and_sync() {
    assert_send_sync::<MirrorDbms>();
    assert_send_sync::<MirrorServer>();
    assert_send_sync::<RetrievalRequest>();
}

fn db() -> Arc<MirrorDbms> {
    static DB: OnceLock<Arc<MirrorDbms>> = OnceLock::new();
    Arc::clone(DB.get_or_init(|| {
        let mut db = MirrorDbms::new(MirrorConfig::default());
        let corpus = WebRobot::new(RobotConfig {
            n_images: 48,
            image_size: 24,
            unannotated_fraction: 0.25,
            seed: 23,
        })
        .crawl();
        db.ingest(&corpus).unwrap();
        Arc::new(db)
    }))
}

/// The mixed workload: text, dual and filtered queries with varying k.
fn run_workload(db: &MirrorDbms, salt: usize) -> Vec<Vec<RankedResult>> {
    let queries = ["sunset glow evening", "forest tree moss", "ocean wave surf"];
    let q = queries[salt % queries.len()];
    vec![
        db.query_text(q, 5 + salt % 3).unwrap(),
        db.query_dual(q, 0.5, 10).unwrap(),
        db.query_text_filtered("sunset", "/sunset/", 10).unwrap(),
    ]
}

#[test]
fn eight_threads_of_mixed_queries_match_single_threaded_runs() {
    let db = db();
    // single-threaded ground truth per salt
    let expected: Vec<Vec<Vec<RankedResult>>> = (0..3).map(|s| run_workload(&db, s)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = Arc::clone(&db);
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..6 {
                        let salt = (t + round) % 3;
                        let got = run_workload(&db, salt);
                        assert_eq!(got, expected[salt], "thread {t} round {round} salt {salt}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
    });
    // no request left a binding behind in the shared environment
    for name in ["q_text", "q_vis"] {
        assert!(db.env().query_binding(name).is_none(), "{name} leaked");
    }
}

#[test]
fn server_under_concurrent_clients_matches_direct_calls() {
    let db = db();
    let server = Arc::new(MirrorServer::start(Arc::clone(&db), 4));
    let expected: Vec<Vec<Vec<RankedResult>>> = (0..3).map(|s| run_workload(&db, s)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let server = Arc::clone(&server);
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..4 {
                        let salt = (c + round) % 3;
                        let q = ["sunset glow evening", "forest tree moss", "ocean wave surf"]
                            [salt % 3];
                        let got = server.query(&RetrievalRequest::text(q, 5 + salt % 3)).unwrap();
                        assert_eq!(got, expected[salt][0], "client {c} round {round}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread panicked");
        }
    });
    let stats = server.stats();
    assert_eq!(stats.served, 8 * 4);
    assert_eq!(stats.errors, 0);
    assert!(stats.throughput_per_sec > 0.0);
}
