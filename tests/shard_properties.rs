//! Property tests for the sharded retrieval path: hash placement must be
//! balanced, a cluster must answer every query bit-identically to a
//! single node at 1/2/4 shards, and the replica router must survive the
//! loss of one replica per shard without changing a single result.

use mirror::core::shard::{hash_shard, MirrorCluster};
use mirror::core::{MirrorDbms, RetrievalError, Retriever};
use mirror::ir::{
    topk_beliefs, topk_beliefs_raw, BeliefParams, IndexBuilder, RawPostings, TopKAccumulator,
};
use mirror::media::{CrawledImage, RobotConfig, WebRobot};
use mirror::monet::Oid;
use proptest::prelude::*;
use std::sync::OnceLock;

const THEMES: &[&str] = &["sunset", "forest", "ocean", "desert", "city", "snow"];

// Hash partitioning balance: at ≥ 1k documents no shard may hold more
// than twice the mean load, for any shard count up to 8.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_hash_partitioning_is_balanced(
        n in 1_000usize..2_500,
        salt in 0u64..1_000,
        shards in 2usize..=8,
    ) {
        let mut counts = vec![0usize; shards];
        for i in 0..n {
            // realistic library URLs: theme directory + per-crawl id
            let url = format!("http://img.example/{}/{}-{salt}.png", THEMES[i % THEMES.len()], i);
            counts[hash_shard(&url, shards)] += 1;
        }
        let mean = n as f64 / shards as f64;
        for (shard, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) <= 2.0 * mean,
                "shard {} holds {} of {} docs (mean {:.1})", shard, c, n, mean
            );
        }
    }
}

/// One corpus, one single node, and clusters at 1/2/4 shards — built once
/// and shared by every proptest case below (building them is the
/// expensive part; the properties range over queries).
struct Fixture {
    single: MirrorDbms,
    clusters: Vec<MirrorCluster>,
}

fn corpus() -> Vec<CrawledImage> {
    WebRobot::new(RobotConfig {
        n_images: 48,
        image_size: 24,
        unannotated_fraction: 0.25,
        seed: 33,
    })
    .crawl()
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let corpus = corpus();
        let mut single = MirrorDbms::with_defaults();
        single.ingest(&corpus).unwrap();
        let clusters = [1usize, 2, 4]
            .into_iter()
            .map(|shards| MirrorCluster::build(&corpus, shards, 2).unwrap())
            .collect();
        Fixture { single, clusters }
    })
}

const QUERY_POOL: &[&str] =
    &["sunset", "glow", "evening", "forest", "tree", "moss", "ocean", "wave", "snow", "mountain"];

fn query_text(words: &[usize]) -> String {
    words.iter().map(|&w| QUERY_POOL[w % QUERY_POOL.len()]).collect::<Vec<_>>().join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// top-k@{1,2,4} shards ≡ top-k@single-node: same documents, same
    /// bit-identical scores, same tie-breaks — for text, dual-coded and
    /// relationally filtered queries alike.
    #[test]
    fn prop_cluster_topk_is_bit_identical_to_single_node(
        words in proptest::collection::vec(0usize..QUERY_POOL.len(), 1..4),
        k in 1usize..48,
        mix in 0.0f64..=1.0,
        theme in 0usize..THEMES.len(),
    ) {
        let f = fixture();
        let q = query_text(&words);
        let expected_text = f.single.query_text(&q, k).unwrap();
        let expected_dual = f.single.query_dual(&q, mix, k).unwrap();
        let filter = format!("/{}/", THEMES[theme]);
        let expected_filtered = f.single.query_text_filtered(&q, &filter, k).unwrap();
        for cluster in &f.clusters {
            let shards = cluster.n_shards();
            prop_assert_eq!(
                &cluster.query_text(&q, k).unwrap(), &expected_text,
                "text {:?} k={} shards={}", &q, k, shards
            );
            prop_assert_eq!(
                &cluster.query_dual(&q, mix, k).unwrap(), &expected_dual,
                "dual {:?} k={} mix={} shards={}", &q, k, mix, shards
            );
            prop_assert_eq!(
                &cluster.query_text_filtered(&q, &filter, k).unwrap(), &expected_filtered,
                "filtered {:?} k={} filter={:?} shards={}", &q, k, &filter, shards
            );
        }
    }

    /// Failover: with one replica of every shard killed (whichever one),
    /// the router fails over and the complete top-k is unchanged.
    #[test]
    fn prop_failover_preserves_complete_topk(
        words in proptest::collection::vec(0usize..QUERY_POOL.len(), 1..4),
        k in 1usize..48,
        dead_replica in 0usize..2,
    ) {
        let f = fixture();
        let q = query_text(&words);
        let expected = f.single.query_text(&q, k).unwrap();
        for cluster in &f.clusters {
            for shard in 0..cluster.n_shards() {
                cluster.kill_replica(shard, dead_replica);
            }
            let got = cluster.query_text(&q, k).unwrap();
            for shard in 0..cluster.n_shards() {
                cluster.revive_replica(shard, dead_replica);
            }
            prop_assert_eq!(&got, &expected, "query {:?} k={} shards={}", &q, k, cluster.n_shards());
        }
    }

    /// Shard projections re-cut the compressed posting blocks over local
    /// oids; on every shard the block-max-skipping evaluation must match
    /// the raw-vec reference, and the merged per-shard top-k heaps must be
    /// bit-identical to the single unsharded index — for 1/2/4 shards.
    #[test]
    fn prop_shard_projections_compressed_equals_raw(
        docs in proptest::collection::vec(
            proptest::collection::vec(0usize..QUERY_POOL.len(), 0..8), 1..120),
        query in proptest::collection::vec((0usize..QUERY_POOL.len(), 0.25f64..2.0), 1..4),
        k in 1usize..12,
    ) {
        let mut b = IndexBuilder::new();
        for words in &docs {
            let toks: Vec<&str> =
                words.iter().map(|&w| QUERY_POOL[w % QUERY_POOL.len()]).collect();
            b.add_tokens(&toks);
        }
        let index = b.build();
        let q: Vec<(String, f64)> =
            query.iter().map(|(w, wt)| (QUERY_POOL[w % QUERY_POOL.len()].to_string(), *wt)).collect();
        let qr: Vec<(&str, f64)> = q.iter().map(|(t, w)| (t.as_str(), *w)).collect();
        let params = BeliefParams::default();
        let expected = topk_beliefs(&index, params, &qr, None, k, 1).hits;
        for shards in [1usize, 2, 4] {
            let mut merged = TopKAccumulator::new(k);
            for s in 0..shards {
                let local: Vec<Oid> =
                    (0..docs.len() as Oid).filter(|d| (*d as usize) % shards == s).collect();
                let shard = index.shard_projection(&local);
                let raw = RawPostings::from_index(&shard);
                let fast = topk_beliefs(&shard, params, &qr, None, k, 1);
                let slow = topk_beliefs_raw(&shard, &raw, params, &qr, None, k, 1);
                prop_assert_eq!(&fast.hits, &slow.hits, "shard {}/{} k={}", s, shards, k);
                for (oid, score) in fast.hits {
                    merged.push(local[oid as usize], score);
                }
            }
            prop_assert_eq!(&merged.into_ranked(), &expected, "shards={} k={}", shards, k);
        }
    }
}

/// Losing every replica of a shard is an error — a shard's documents
/// cannot silently vanish from the ranking.
#[test]
fn losing_a_whole_shard_errors_rather_than_truncating() {
    let f = fixture();
    let cluster = &f.clusters[1]; // 2 shards × 2 replicas
    cluster.kill_replica(0, 0);
    cluster.kill_replica(0, 1);
    let err = cluster.query_text("sunset glow", 10).unwrap_err();
    assert!(
        matches!(err, RetrievalError::ShardUnavailable { shard: 0, .. }),
        "expected ShardUnavailable for shard 0, got {err}"
    );
    cluster.revive_replica(0, 0);
    cluster.revive_replica(0, 1);
    assert_eq!(
        cluster.query_text("sunset glow", 10).unwrap(),
        f.single.query_text("sunset glow", 10).unwrap()
    );
}
