//! Property-based tests over the core data structures and cross-layer
//! invariants: the BAT algebra, the text pipeline, the belief functions,
//! and naive-vs-flattened query equivalence on randomised data.

use mirror::ir::{porter_stem, tokenize_stemmed, BeliefParams, IndexBuilder};
use mirror::moa::naive::{outputs_equivalent, NaiveEngine};
use mirror::moa::{parse_define, Env, MoaEngine, MoaVal};
use mirror::monet::{bat::bat_of_ints, Agg, Bat, Column, Val};
use proptest::prelude::*;
use std::ops::Bound;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- kernel algebra ----------

    /// reverse is an involution and preserves cardinality.
    #[test]
    fn prop_reverse_involutive(vals in proptest::collection::vec(-1000i64..1000, 0..200)) {
        let b = bat_of_ints(vals);
        let rr = b.reverse().reverse();
        prop_assert_eq!(b.count(), rr.count());
        prop_assert_eq!(b.to_pairs(), rr.to_pairs());
    }

    /// select_eq returns exactly the rows whose tail matches.
    #[test]
    fn prop_select_eq_exact(vals in proptest::collection::vec(-20i64..20, 0..200), needle in -20i64..20) {
        let b = bat_of_ints(vals.clone());
        let r = b.select_eq(&Val::Int(needle)).unwrap();
        let expected = vals.iter().filter(|&&v| v == needle).count();
        prop_assert_eq!(r.count(), expected);
        for (_, t) in r.to_pairs() {
            prop_assert_eq!(t, Val::Int(needle));
        }
    }

    /// range select agrees between the sorted (binary search) and unsorted
    /// (scan) code paths.
    #[test]
    fn prop_select_range_sorted_equals_scan(
        mut vals in proptest::collection::vec(-50i64..50, 1..150),
        lo in -60i64..60,
        len in 0i64..40,
    ) {
        let hi = lo + len;
        let unsorted = bat_of_ints(vals.clone());
        let scan = unsorted
            .select_range(Bound::Included(&Val::Int(lo)), Bound::Excluded(&Val::Int(hi)))
            .unwrap();
        vals.sort_unstable();
        let sorted = bat_of_ints(vals).analyze();
        prop_assert!(sorted.props().tail_sorted);
        let bin = sorted
            .select_range(Bound::Included(&Val::Int(lo)), Bound::Excluded(&Val::Int(hi)))
            .unwrap();
        // same multiset of tails
        let mut a: Vec<i64> = scan.to_pairs().iter().map(|(_, t)| t.as_int().unwrap()).collect();
        let b: Vec<i64> = bin.to_pairs().iter().map(|(_, t)| t.as_int().unwrap()).collect();
        a.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// join with a dense build side is a positional fetch: output count is
    /// the number of in-range probe oids.
    #[test]
    fn prop_fetch_join_count(
        probes in proptest::collection::vec(0u32..100, 0..200),
        build_len in 0usize..100,
    ) {
        let l = Bat::dense(Column::Oid(probes.clone()));
        let r = bat_of_ints((0..build_len as i64).collect());
        let j = l.join(&r).unwrap();
        let expected = probes.iter().filter(|&&o| (o as usize) < build_len).count();
        prop_assert_eq!(j.count(), expected);
    }

    /// grouped sum of all-ones equals grouped count.
    #[test]
    fn prop_grouped_sum_ones_is_count(groups in proptest::collection::vec(0u32..8, 1..200)) {
        let n = groups.len();
        let vals = Bat::dense(Column::Float(vec![1.0; n]));
        let gmap = Bat::dense(Column::Oid(groups));
        let sums = vals.grouped_agg(&gmap, Agg::Sum).unwrap();
        let counts = vals.grouped_agg(&gmap, Agg::Count).unwrap();
        prop_assert_eq!(sums.count(), counts.count());
        for i in 0..sums.count() {
            let s = sums.fetch(i).unwrap().1.as_float().unwrap();
            let c = counts.fetch(i).unwrap().1.as_int().unwrap();
            prop_assert!((s - c as f64).abs() < 1e-9);
        }
    }

    /// kunion/kdiff partition: kdiff(a,b) ∪ kintersect(a,b) has a's rows.
    #[test]
    fn prop_setops_partition(
        heads_a in proptest::collection::hash_set(0u32..50, 0..30),
        heads_b in proptest::collection::hash_set(0u32..50, 0..30),
    ) {
        let mk = |hs: &std::collections::HashSet<u32>| {
            let v: Vec<u32> = hs.iter().copied().collect();
            let n = v.len();
            Bat::new(Column::Oid(v), Column::Int(vec![0; n])).unwrap()
        };
        let a = mk(&heads_a);
        let b = mk(&heads_b);
        let diff = a.kdiff(&b).unwrap();
        let inter = a.kintersect(&b).unwrap();
        prop_assert_eq!(diff.count() + inter.count(), a.count());
        let union = a.kunion(&b).unwrap();
        let expected: std::collections::HashSet<u32> =
            heads_a.union(&heads_b).copied().collect();
        prop_assert_eq!(union.count(), expected.len());
    }

    /// topn returns the same tails as a full sort prefix.
    #[test]
    fn prop_topn_is_sort_prefix(vals in proptest::collection::vec(-1000i64..1000, 0..150), k in 0usize..20) {
        let b = bat_of_ints(vals);
        let top = b.topn_tail(k, true);
        let full = b.sort_tail(true).slice(0, k);
        let a: Vec<_> = top.to_pairs().into_iter().map(|(_, t)| t).collect();
        let c: Vec<_> = full.to_pairs().into_iter().map(|(_, t)| t).collect();
        prop_assert_eq!(a, c);
    }

    // ---------- text pipeline ----------

    /// stemming is idempotent: stem(stem(w)) == stem(w).
    #[test]
    fn prop_stemmer_idempotent(word in "[a-z]{1,12}") {
        let once = porter_stem(&word);
        let twice = porter_stem(&once);
        prop_assert_eq!(&once, &twice, "word {}", word);
    }

    /// stems never grow and stay non-empty for non-empty input.
    #[test]
    fn prop_stemmer_shrinks(word in "[a-z]{1,15}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len());
        prop_assert!(!stem.is_empty());
    }

    /// the token pipeline never emits stopwords or empty tokens.
    #[test]
    fn prop_pipeline_clean(text in "[a-zA-Z ,.!]{0,80}") {
        for t in tokenize_stemmed(&text) {
            prop_assert!(!t.is_empty());
        }
    }

    // ---------- beliefs ----------

    /// beliefs are always within [alpha, 1).
    #[test]
    fn prop_beliefs_bounded(tf in 0u32..500, df in 1u32..100, dl in 0u32..1000, n in 1usize..1000) {
        let p = BeliefParams::default();
        let df = df.min(n as u32);
        let b = p.belief(tf, df, dl, n, 12.5);
        prop_assert!(b >= p.alpha - 1e-12, "belief {} below alpha", b);
        prop_assert!(b < 1.0, "belief {} not below 1", b);
    }

    /// belief is monotone in tf.
    #[test]
    fn prop_belief_monotone_tf(tf in 0u32..100, df in 1u32..50, dl in 1u32..100) {
        let p = BeliefParams::default();
        let b1 = p.belief(tf, df, dl, 100, 20.0);
        let b2 = p.belief(tf + 1, df, dl, 100, 20.0);
        prop_assert!(b2 >= b1 - 1e-12);
    }

    /// index statistics stay consistent under arbitrary corpora.
    #[test]
    fn prop_index_consistency(docs in proptest::collection::vec(
        proptest::collection::vec("[a-z]{1,6}", 0..12), 1..20))
    {
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_tokens(d);
        }
        let idx = b.build();
        prop_assert_eq!(idx.n_docs(), docs.len());
        let stats = idx.stats();
        let total: u64 = (0..docs.len()).map(|i| idx.doc_len(i as u32) as u64).sum();
        prop_assert_eq!(stats.total_tokens, total);
        // df of every dictionary term is between 1 and n_docs
        for (_, term) in idx.dict().iter() {
            let df = idx.df(term);
            prop_assert!(df >= 1 && df as usize <= docs.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// the flattened engine and the object-at-a-time interpreter agree on
    /// randomised collections and select/map/aggregate queries.
    #[test]
    fn prop_naive_equals_flattened(
        rows in proptest::collection::vec((0i64..100, 0i64..100), 1..40),
        threshold in 0i64..100,
    ) {
        let mut env = Env::new();
        env.keep_raw = true;
        let (name, ty) = parse_define(
            "define P as SET<TUPLE<Atomic<int>: x, Atomic<int>: y>>;",
        ).unwrap();
        let data: Vec<MoaVal> = rows
            .iter()
            .map(|(x, y)| MoaVal::Tuple(vec![MoaVal::Int(*x), MoaVal::Int(*y)]))
            .collect();
        env.create_collection(name, ty, data).unwrap();
        let env = Arc::new(env);
        let engine = MoaEngine::new(Arc::clone(&env));
        let naive = NaiveEngine::new(&env);
        for q in [
            format!("select[THIS.x >= {threshold}](P)"),
            format!("map[THIS.y](select[THIS.x < {threshold}](P))"),
            "map[THIS.x + THIS.y * 2](P)".to_string(),
            format!("count(select[THIS.x = {threshold}](P))"),
        ] {
            let a = engine.query(&q).unwrap();
            let b = naive.query(&q).unwrap();
            prop_assert!(outputs_equivalent(&a, &b), "query {} diverged:\n{:?}\nvs\n{:?}", q, a, b);
        }
    }
}
