//! Live ingest under serving load: the adversarial proof of MVCC
//! snapshot isolation.
//!
//! The contract under test (ISSUE 9): writer threads insert/delete while
//! reader threads query, and **every** result a reader ever observes is
//! bit-identical to a batch re-ingest of *some quiesced prefix* of the
//! write sequence; deleted documents never surface on any query surface;
//! a pinned generation stays readable across merges and is reclaimed
//! (counter-proven) once unpinned.
//!
//! Bit-identity is compared on `(url, score)` pairs: live arrival oids
//! and a re-ingest's dense oids differ by a monotone bijection, so equal
//! corpora must produce equal url/score sequences — including equal-score
//! tie-breaks.

use mirror::core::feedback::FeedbackQuery;
use mirror::core::query::weighted_terms;
use mirror::core::serve::{MirrorServer, RetrievalRequest};
use mirror::core::{LibraryRow, RetrievalResult};
use mirror::core::{
    LiveCluster, LiveMirror, LiveReader, MergePolicy, MirrorConfig, MirrorDbms, MutableCorpus,
    Retriever,
};
use mirror::media::{RobotConfig, WebRobot};
use mirror::{cluster::VisualVocabulary, thesaurus::AssociationThesaurus};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Fixture: one batch-ingested corpus supplying rows, vocabulary, thesaurus
// ---------------------------------------------------------------------------

struct Fixture {
    config: MirrorConfig,
    /// All ingested rows: a prefix seeds live instances, the rest is the
    /// insert pool (real in-vocabulary visual terms).
    rows: Vec<LibraryRow>,
    vocab: VisualVocabulary,
    thes: AssociationThesaurus,
    fq: FeedbackQuery,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let mut db = MirrorDbms::with_defaults();
        let corpus = WebRobot::new(RobotConfig {
            n_images: 48,
            image_size: 24,
            unannotated_fraction: 0.25,
            seed: 17,
        })
        .crawl();
        db.ingest(&corpus).unwrap();
        let rows = db.library_rows().to_vec();
        let visual = rows
            .iter()
            .find(|r| !r.vterms.is_empty())
            .map(|r| r.vterms.split_whitespace().take(2).map(|t| (t.to_string(), 1.0)).collect())
            .unwrap_or_default();
        Fixture {
            config: db.config().clone(),
            vocab: db.vocabulary().unwrap().clone(),
            thes: db.thesaurus().unwrap().clone(),
            rows,
            fq: FeedbackQuery { text: weighted_terms("ocean wave sky"), visual },
        }
    })
}

/// The query battery: every surface of the satellite checklist —
/// `query_text`, `query_dual`, `query_text_filtered`, `run_feedback_query`.
fn probe_requests(f: &Fixture) -> Vec<RetrievalRequest> {
    vec![
        RetrievalRequest::text("sunset over the water", 10),
        RetrievalRequest::dual("forest tree", 0.5, 10),
        RetrievalRequest::text("city desert", 10).with_filter("1"),
        RetrievalRequest::dual_terms(f.fq.text.clone(), f.fq.visual.clone(), 0.4, 10),
    ]
}

type Keyed = Vec<Vec<(String, f64)>>;

fn keyed(runs: Vec<Vec<mirror::core::query::RankedResult>>) -> Keyed {
    runs.into_iter().map(|hits| hits.into_iter().map(|h| (h.url, h.score)).collect()).collect()
}

fn probe(r: &(impl Retriever + ?Sized), f: &Fixture) -> Keyed {
    keyed(probe_requests(f).iter().map(|q| r.retrieve(q).unwrap()).collect())
}

fn probe_reader(r: &LiveReader, f: &Fixture) -> Keyed {
    keyed(probe_requests(f).iter().map(|q| r.retrieve(q).unwrap()).collect())
}

/// A batch re-ingest of `rows` with the shared vocabulary/thesaurus —
/// the ground truth every live snapshot must be bit-identical to.
fn reference(f: &Fixture, rows: Vec<LibraryRow>) -> MirrorDbms {
    MirrorDbms::from_rows(f.config.clone(), rows, Some(f.vocab.clone()), Some(f.thes.clone()))
        .unwrap()
}

fn seed_live(f: &Fixture, n_base: usize) -> LiveMirror {
    LiveMirror::new(reference(f, f.rows[..n_base].to_vec()))
}

// ---------------------------------------------------------------------------
// Write-op replay model (the specification the live path is held to)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<LibraryRow>),
    Delete(String),
}

/// Replay ops over `(row, alive)` history: insert appends, delete
/// tombstones the *latest* alive row with the URL (the live semantics).
fn apply(history: &mut Vec<(LibraryRow, bool)>, op: &Op) {
    match op {
        Op::Insert(rows) => history.extend(rows.iter().cloned().map(|r| (r, true))),
        Op::Delete(url) => {
            if let Some(e) = history.iter_mut().rev().find(|(r, alive)| *alive && r.url == *url) {
                e.1 = false;
            }
        }
    }
}

fn survivors(history: &[(LibraryRow, bool)]) -> Vec<LibraryRow> {
    history.iter().filter(|(_, alive)| *alive).map(|(r, _)| r.clone()).collect()
}

// ---------------------------------------------------------------------------
// Satellite 1 — concurrent stress: every observed result ≡ some prefix
// ---------------------------------------------------------------------------

#[test]
fn concurrent_writers_and_readers_observe_only_quiesced_prefix_states() {
    let f = fixture();
    const N_BASE: usize = 30;
    let live = seed_live(f, N_BASE);

    // two writers on disjoint URL sets, three readers pinning snapshots
    let (mut log_a, mut log_b) = (Vec::new(), Vec::new());
    let mut observed: Vec<Vec<(u64, Keyed)>> = Vec::new();
    std::thread::scope(|scope| {
        let inserter = scope.spawn(|| {
            let mut log = Vec::new();
            for chunk in f.rows[N_BASE..].chunks(2) {
                let seq = live.insert_rows(chunk.to_vec()).unwrap();
                log.push((seq, Op::Insert(chunk.to_vec())));
            }
            log
        });
        let deleter = scope.spawn(|| {
            let mut log = Vec::new();
            for row in f.rows[..N_BASE].iter().step_by(4) {
                let seq = live.delete(&row.url).unwrap().expect("base url is live");
                log.push((seq, Op::Delete(row.url.clone())));
            }
            log
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    (0..12)
                        .map(|_| {
                            let pin = live.pin();
                            (pin.seq(), probe_reader(&pin, f))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        log_a = inserter.join().unwrap();
        log_b = deleter.join().unwrap();
        observed = readers.into_iter().map(|h| h.join().unwrap()).collect();
    });

    // sequence numbers are assigned under the writer lock and the
    // snapshot swaps before the lock releases, so snapshot seq = s holds
    // exactly ops 1..=s — build the reference state for each prefix
    let mut ops: Vec<(u64, Op)> = log_a.into_iter().chain(log_b).collect();
    ops.sort_by_key(|&(seq, _)| seq);
    assert_eq!(
        ops.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
        (1..=ops.len() as u64).collect::<Vec<_>>(),
        "write sequence must be gap-free"
    );

    let mut history: Vec<(LibraryRow, bool)> =
        f.rows[..N_BASE].iter().cloned().map(|r| (r, true)).collect();
    let mut prefix_probes: Vec<Keyed> = vec![probe(&reference(f, survivors(&history)), f)];
    for (_, op) in &ops {
        apply(&mut history, op);
        prefix_probes.push(probe(&reference(f, survivors(&history)), f));
    }

    let mut checked = 0;
    for per_reader in &observed {
        for (seq, results) in per_reader {
            assert_eq!(
                results, &prefix_probes[*seq as usize],
                "snapshot at seq {seq} is not the quiesced prefix state"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 36);

    // final quiesce ≡ batch re-ingest of the surviving docs, before and
    // after the delta folds into a compressed generation
    let final_probe = prefix_probes.last().unwrap();
    assert_eq!(&probe(&live, f), final_probe);
    live.merge().unwrap();
    assert_eq!(&probe(&live, f), final_probe, "merged generation diverged from the delta view");
    assert_eq!(live.pin().surviving_rows(), survivors(&history));
}

// ---------------------------------------------------------------------------
// Satellite 2 — tombstones never surface, on any query surface
// ---------------------------------------------------------------------------

fn urls_in(probes: &Keyed) -> Vec<String> {
    let mut urls: Vec<String> = probes.iter().flatten().map(|(u, _)| u.clone()).collect();
    urls.sort();
    urls.dedup();
    urls
}

#[test]
fn deleted_docs_never_surface_on_any_query_surface() {
    let f = fixture();
    let live = seed_live(f, f.rows.len());

    // delete every document the battery currently surfaces
    let victims = urls_in(&probe(&live, f));
    assert!(victims.len() >= 5, "battery should surface several docs, got {}", victims.len());
    for url in &victims {
        live.delete(url).unwrap().expect("surfaced url is live");
    }

    let check = |live: &LiveMirror, stage: &str| {
        let after = probe(live, f);
        for url in &victims {
            assert!(!urls_in(&after).contains(url), "{stage}: deleted {url} surfaced in {after:?}");
        }
        let expect = probe(&reference(f, live.pin().surviving_rows()), f);
        assert_eq!(after, expect, "{stage}: live ranking diverged from batch re-ingest");
    };
    check(&live, "delta tombstones");

    // fold and re-check: the merged generation has no tombstone set, and
    // with an empty delta queries take the fused topk_bl fast path
    live.merge().unwrap();
    check(&live, "post-merge (fused topk_bl)");

    // the served path sees the same isolation
    let server = MirrorServer::start(Arc::new(live), 2);
    for req in probe_requests(f) {
        for (url, _) in keyed(vec![server.query(&req).unwrap()]).remove(0) {
            assert!(!victims.contains(&url), "served query surfaced deleted {url}");
        }
    }
    server.delete("no-such-url").unwrap();
}

#[test]
fn clusters_of_1_2_4_shards_mask_tombstones_and_match_single_node() {
    let f = fixture();

    // ground truth: a single live node fed the same op sequence
    let single = LiveMirror::new(reference(f, Vec::new()));
    for chunk in f.rows.chunks(5) {
        single.insert_rows(chunk.to_vec()).unwrap();
    }
    let victims = urls_in(&probe(&single, f));
    assert!(!victims.is_empty());
    for url in &victims {
        single.delete(url).unwrap().expect("victim is live");
    }
    let expect_delta = probe(&single, f);
    single.merge().unwrap();
    let expect_merged = probe(&single, f);
    assert_eq!(expect_delta, expect_merged);

    for n_shards in [1usize, 2, 4] {
        let cluster = LiveCluster::new(
            n_shards,
            f.config.clone(),
            Some(f.vocab.clone()),
            Some(f.thes.clone()),
        )
        .unwrap();
        for chunk in f.rows.chunks(5) {
            cluster.insert_rows(chunk.to_vec()).unwrap();
        }
        for url in &victims {
            cluster.delete(url).unwrap().expect("victim is live on its shard");
        }
        assert_eq!(cluster.n_docs(), single.n_docs());
        let got = probe(&cluster, f);
        assert_eq!(
            got, expect_delta,
            "{n_shards}-shard cluster diverged from single node (delta view)"
        );
        for url in &victims {
            assert!(!urls_in(&got).contains(url), "{n_shards} shards: deleted {url} surfaced");
        }
        cluster.merge_all().unwrap();
        let got = probe(&cluster, f);
        assert_eq!(
            got, expect_merged,
            "{n_shards}-shard cluster diverged from single node (merged view)"
        );
        assert!(cluster.delete("no-such-url").unwrap().is_none());
    }
}

/// Duplicate-URL inserts stack: each delete tombstones the *latest* live
/// document with the URL and re-targets the next-latest, returning `Some`
/// until every copy is gone — the same answer before and after a merge
/// (regression: the URL map used to track only the latest copy, so the
/// observable contract changed across merges).
#[test]
fn duplicate_url_deletes_retarget_next_latest_across_merges() {
    let f = fixture();
    let live = seed_live(f, 8);
    let version = |ann: &str| {
        let mut r = f.rows[10].clone();
        r.url = "dup://same".to_string();
        r.annotation = Some(ann.to_string());
        r
    };
    let (v1, v2, v3) = (version("first version"), version("second version"), version("third"));
    live.insert_rows(vec![v1.clone()]).unwrap();
    live.insert_rows(vec![v2.clone(), v3]).unwrap();
    assert_eq!(live.n_docs(), 11);

    // first delete pops the latest copy; the older two survive in order
    assert!(live.delete("dup://same").unwrap().is_some());
    assert_eq!(live.n_docs(), 10);
    let dups: Vec<_> = live
        .pin()
        .surviving_rows()
        .into_iter()
        .filter(|r| r.url == "dup://same")
        .map(|r| r.annotation)
        .collect();
    assert_eq!(dups, vec![v1.annotation.clone(), v2.annotation.clone()]);

    // a merge must not change what the next delete targets
    live.merge().unwrap();
    assert!(live.delete("dup://same").unwrap().is_some(), "older duplicate still deletable");
    assert!(live.delete("dup://same").unwrap().is_some(), "oldest duplicate still deletable");
    assert_eq!(live.delete("dup://same").unwrap(), None, "every copy is tombstoned");
    assert_eq!(live.n_docs(), 8);
    assert_eq!(probe(&live, f), probe(&reference(f, live.pin().surviving_rows()), f));
}

/// Queries racing `merge_all` must never observe a torn pin/routing pair:
/// the shard snapshots and the local→global table are read under one
/// critical section, so a merge compacting the routing rows mid-query
/// cannot strand pre-merge oids against the compacted table (regression:
/// pinning outside the routing lock panicked or mis-attributed URLs
/// whenever tombstones had been compacted away).
#[test]
fn cluster_retrieve_races_merge_all_without_desync() {
    let f = fixture();
    let cluster =
        LiveCluster::new(2, f.config.clone(), Some(f.vocab.clone()), Some(f.thes.clone())).unwrap();
    cluster.insert_rows(f.rows[..24].to_vec()).unwrap();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    let reqs = probe_requests(f);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for q in &reqs {
                            for h in cluster.retrieve(q).unwrap() {
                                assert!(h.score.is_finite(), "torn routing produced {h:?}");
                            }
                        }
                    }
                })
            })
            .collect();
        // every round tombstones a doc then merges, so merge_all compacts
        // the routing table while the readers are mid-flight
        for round in 0..12 {
            let mut row = f.rows[24 + round].clone();
            row.url = format!("{}#round{round}", row.url);
            cluster.insert_rows(vec![row]).unwrap();
            cluster.delete(&f.rows[round].url).unwrap().expect("victim is live");
            cluster.merge_all().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader raced a merge and died");
        }
    });
}

// ---------------------------------------------------------------------------
// Satellite 3 — epoch reclamation, counter-instrumented
// ---------------------------------------------------------------------------

#[test]
fn pinned_generation_survives_merges_and_is_reclaimed_after_unpin() {
    let f = fixture();
    const N_BASE: usize = 12;
    let live = seed_live(f, N_BASE);
    let s0 = live.generation_stats();
    assert_eq!((s0.current, s0.created, s0.retired, s0.alive), (0, 1, 0, 1));
    assert!(s0.alive_bytes > 0);

    let pin0 = live.pin();
    let pinned_probe = probe_reader(&pin0, f);
    const K: u64 = 3;
    for i in 0..K {
        live.insert_rows(vec![f.rows[N_BASE + i as usize].clone()]).unwrap();
        live.merge().unwrap();
    }

    // K merges: generations 1..K-1 retired the moment their snapshot was
    // swapped out; generation 0 is held alive by the pin alone
    let s = live.generation_stats();
    assert_eq!((s.current, s.created, s.retired, s.alive), (K, K + 1, K - 1, 2));
    assert_eq!(pin0.generation(), 0);
    assert_eq!(probe_reader(&pin0, f), pinned_probe, "pinned snapshot drifted under churn");
    assert_eq!(
        probe_reader(&pin0, f),
        probe(&reference(f, pin0.surviving_rows()), f),
        "pinned snapshot is not its own quiesced state"
    );

    let bytes_while_pinned = s.alive_bytes;
    drop(pin0);
    let s = live.generation_stats();
    assert_eq!((s.created, s.retired, s.alive), (K + 1, K, 1));
    assert!(
        s.alive_bytes < bytes_while_pinned,
        "unpinning freed nothing: {} -> {}",
        bytes_while_pinned,
        s.alive_bytes
    );

    // churn with no standing pins never accumulates generations
    for i in 0..3 {
        live.insert_rows(vec![f.rows[N_BASE + K as usize + i].clone()]).unwrap();
        live.merge().unwrap();
    }
    assert_eq!(live.generation_stats().alive, 1);
}

// ---------------------------------------------------------------------------
// Properties — seeded single-thread interleavings over the replay model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Step {
    InsertPool(usize, usize), // offset, len (taken from the pool, cyclic)
    DeleteNth(usize),         // delete the nth currently-live row
    DeleteMissing,
    Merge,
}

/// Decode a raw `(tag, a, b)` draw into a weighted step: the vendored
/// proptest has no `prop_oneof`, so weights live in the tag ranges.
fn decode_step((tag, a, b): (u8, usize, usize)) -> Step {
    match tag {
        0..=3 => Step::InsertPool(a, 1 + b % 2),
        4..=6 => Step::DeleteNth(a),
        7 => Step::DeleteMissing,
        _ => Step::Merge,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded schedule of inserts/deletes/merges leaves the live view
    /// bit-identical to the replay model's batch re-ingest after every
    /// single step.
    #[test]
    fn prop_seeded_schedules_track_their_quiesced_state(
        raw in proptest::collection::vec((0u8..10, 0usize..64, 0usize..16), 1..10)
    ) {
        let steps: Vec<Step> = raw.into_iter().map(decode_step).collect();
        let f = fixture();
        const N_BASE: usize = 14;
        let live = seed_live(f, N_BASE);
        let mut history: Vec<(LibraryRow, bool)> =
            f.rows[..N_BASE].iter().cloned().map(|r| (r, true)).collect();
        let pool = &f.rows[N_BASE..];

        let mut inserted = 0usize;
        for step in &steps {
            match step {
                Step::InsertPool(offset, len) => {
                    // fresh unique URLs so delete-by-url stays unambiguous
                    let rows: Vec<LibraryRow> = (0..*len)
                        .map(|i| {
                            let mut r = pool[(offset + i) % pool.len()].clone();
                            r.url = format!("{}#live-{}", r.url, inserted + i);
                            r
                        })
                        .collect();
                    inserted += len;
                    let op = Op::Insert(rows.clone());
                    live.insert_rows(rows).unwrap();
                    apply(&mut history, &op);
                }
                Step::DeleteNth(n) => {
                    let alive: Vec<String> = history
                        .iter()
                        .filter(|(_, a)| *a)
                        .map(|(r, _)| r.url.clone())
                        .collect();
                    if alive.is_empty() {
                        continue;
                    }
                    let url = alive[n % alive.len()].clone();
                    prop_assert!(live.delete(&url).unwrap().is_some());
                    apply(&mut history, &Op::Delete(url));
                }
                Step::DeleteMissing => {
                    prop_assert!(live.delete("never-crawled").unwrap().is_none());
                }
                Step::Merge => live.merge().unwrap(),
            }
            let expect = probe(&reference(f, survivors(&history)), f);
            prop_assert_eq!(&probe(&live, f), &expect, "diverged after {:?}", step);
            prop_assert_eq!(live.n_docs(), history.iter().filter(|(_, a)| *a).count());
        }
        // final quiesce: fold everything and compare the corpus itself
        live.merge().unwrap();
        prop_assert_eq!(live.pin().surviving_rows(), survivors(&history));
    }
}

// ---------------------------------------------------------------------------
// Smoke: the image write path quantises through the pinned vocabulary
// ---------------------------------------------------------------------------

#[test]
fn insert_images_matches_batch_ingest_of_the_same_crawl() {
    let f = fixture();
    let live = seed_live(f, f.rows.len());
    let extra = WebRobot::new(RobotConfig {
        n_images: 6,
        image_size: 24,
        unannotated_fraction: 0.25,
        seed: 91,
    })
    .crawl();
    live.insert_images(&extra).unwrap();
    assert_eq!(live.n_docs(), f.rows.len() + extra.len());
    // the extracted rows carry in-vocabulary visual terms
    let pin = live.pin();
    let rows = pin.surviving_rows();
    assert!(rows[f.rows.len()..].iter().any(|r| !r.vterms.is_empty()));
    // and the live view still tracks its batch re-ingest exactly
    assert_eq!(probe(&live, f), probe(&reference(f, rows), f));
}

/// Compile-time proof the live types cross threads.
#[allow(dead_code)]
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn live_types_are_send_and_sync() {
    assert_send_sync::<LiveMirror>();
    assert_send_sync::<LiveCluster>();
    assert_send_sync::<LiveReader>();
}

#[test]
fn merge_policy_auto_triggers_and_preserves_rankings() {
    let f = fixture();
    let live = seed_live(f, 32);
    let rows_policy =
        MergePolicy { max_delta_rows: 8, max_delta_bytes: u64::MAX, max_tombstones: usize::MAX };
    // below every threshold: the policy stays quiet
    live.insert_rows(f.rows[32..36].to_vec()).unwrap();
    assert!(!live.maybe_merge(&rows_policy).unwrap());
    assert_eq!(live.generation_stats().current, 0);
    // crossing the row threshold fires exactly one merge…
    live.insert_rows(f.rows[36..44].to_vec()).unwrap();
    let (rows, bytes, tombstones) = live.delta_pressure();
    assert_eq!((rows, tombstones), (12, 0));
    assert!(bytes > 0);
    let before = probe(&live, f);
    assert!(live.maybe_merge(&rows_policy).unwrap());
    assert_eq!(live.generation_stats().current, 1);
    // …with rankings bit-identical across the fold
    assert_eq!(probe(&live, f), before);
    // the folded delta leaves no pressure, so the policy is idle again
    assert_eq!(live.delta_pressure(), (0, 0, 0));
    assert!(!live.maybe_merge(&rows_policy).unwrap());
    assert_eq!(live.generation_stats().current, 1);
    // the tombstone threshold is an independent trigger
    let tomb_policy =
        MergePolicy { max_delta_rows: usize::MAX, max_delta_bytes: u64::MAX, max_tombstones: 2 };
    live.delete(&f.rows[0].url).unwrap();
    assert!(!live.maybe_merge(&tomb_policy).unwrap());
    live.delete(&f.rows[1].url).unwrap();
    let before = probe(&live, f);
    assert!(live.maybe_merge(&tomb_policy).unwrap());
    assert_eq!(live.generation_stats().current, 2);
    assert_eq!(probe(&live, f), before);
    // and the merged corpus still equals a batch re-ingest of survivors
    assert_eq!(probe(&live, f), probe(&reference(f, live.pin().surviving_rows()), f));
}

#[test]
fn mutable_corpus_is_object_safe_behind_the_server() {
    let f = fixture();
    let live = Arc::new(seed_live(f, 8));
    let server = MirrorServer::start(Arc::clone(&live), 2);
    let seq = server.insert_rows(vec![f.rows[10].clone()]).unwrap();
    assert!(seq > 0);
    let hits: RetrievalResult<_> = server.query(&RetrievalRequest::text("sunset", 5));
    hits.unwrap();
    assert_eq!(server.delete(&f.rows[10].url).unwrap(), Some(seq + 1));
}
