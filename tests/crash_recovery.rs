//! Crash-injection proof of the durable storage tier.
//!
//! The contract under test: a `MirrorDbms` saved into the page-granular
//! store can be killed at *any* write — mid-WAL-append, mid-checkpoint,
//! mid-remove — and a subsequent cold open either reconstructs an
//! instance that ranks **bit-identically** to the never-crashed one, or
//! reports a typed `IncompleteState` from which re-running the save
//! converges. Checksummed pages mean silent bit corruption is
//! *detected*, never served.
//!
//! Crash points are exercised two ways: exhaustively (every write index
//! with a clean cut) and by property (random kill points with random
//! torn tails), both against a cached never-crashed baseline.

use mirror::core::query::RankedResult;
use mirror::core::shard::MirrorCluster;
use mirror::core::{LibraryRow, LiveMirror, MirrorDbms, RetrievalError, Retriever};
use mirror::media::{CrawledImage, RobotConfig, WebRobot};
use mirror::monet::storage::BitFlip;
use mirror::monet::{FaultFs, FaultPlan, MemFs, StorageBackend, Store, StoreOptions};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::{Arc, OnceLock};

fn corpus() -> Vec<CrawledImage> {
    WebRobot::new(RobotConfig { n_images: 18, image_size: 24, unannotated_fraction: 0.2, seed: 7 })
        .crawl()
}

/// The query battery every recovered instance must answer bit-identically:
/// text-only, dual-coded (thesaurus expansion), and structure+content.
fn probe(r: &(impl Retriever + ?Sized)) -> Vec<Vec<RankedResult>> {
    vec![
        r.query_text("sunset over the water", 10).unwrap(),
        r.query_text("forest ocean", 8).unwrap(),
        r.query_dual("desert", 0.5, 10).unwrap(),
        r.query_text_filtered("city", "img", 10).unwrap(),
    ]
}

/// One ingested instance, its never-crashed durable images, and its
/// rankings — built once, shared by every test below.
struct Baseline {
    db: MirrorDbms,
    /// Fully saved *and* checkpointed: state lives in checksummed pages.
    saved: MemFs,
    /// Saved but never checkpointed: state recovers purely from the WAL.
    wal_only: MemFs,
    probes: Vec<Vec<RankedResult>>,
    /// Mutating backend ops in one full save + checkpoint — the space of
    /// injectable crash points.
    total_writes: u64,
}

fn baseline() -> &'static Baseline {
    static B: OnceLock<Baseline> = OnceLock::new();
    B.get_or_init(|| {
        let mut db = MirrorDbms::with_defaults();
        db.ingest(&corpus()).unwrap();

        // Full save through a fault-free FaultFs to count the writes.
        let saved = MemFs::new();
        let counter = Arc::new(FaultFs::new(Arc::new(saved.clone()), FaultPlan::default()));
        let store = Store::open(counter.clone(), StoreOptions::default()).unwrap();
        db.save_to(&store).unwrap();
        store.checkpoint().unwrap();
        let total_writes = counter.writes_issued();
        assert!(total_writes > 10, "suspiciously few writes: {total_writes}");
        drop(store);

        let wal_only = MemFs::new();
        let store = Store::open(Arc::new(wal_only.clone()), StoreOptions::default()).unwrap();
        db.save_to(&store).unwrap();
        drop(store);

        let probes = probe(&db);
        assert!(probes.iter().any(|p| !p.is_empty()), "baseline probes are all empty");
        Baseline { db, saved, wal_only, probes, total_writes }
    })
}

fn reopen(fs: &MemFs) -> Store {
    Store::open(Arc::new(fs.clone()), StoreOptions::default()).unwrap()
}

/// Crash a save+checkpoint at write index `w` with `torn` garbage-free
/// prefix bytes landing from the fatal write, then cold-open whatever
/// survived and hold it to the contract.
fn crash_and_check(w: u64, torn: usize) -> Result<(), TestCaseError> {
    let b = baseline();
    let fs = MemFs::new();
    let plan = FaultPlan { crash_at_write: Some(w), torn_bytes: torn, flips: vec![] };
    let fault = Arc::new(FaultFs::new(Arc::new(fs.clone()), plan));
    let crashed = (|| -> Result<(), RetrievalError> {
        let store = Store::open(fault.clone(), StoreOptions::default())?;
        b.db.save_to(&store)?;
        store.checkpoint()?;
        Ok(())
    })();
    prop_assert!(crashed.is_err(), "crash at write {w} (torn {torn}) did not fire");
    prop_assert!(fault.crashed());

    let store = reopen(&fs);
    match MirrorDbms::open_from(&store) {
        Ok(db) => prop_assert_eq!(&probe(&db), &b.probes, "crash at write {} (torn {})", w, torn),
        Err(RetrievalError::IncompleteState { .. }) => {
            // the save never finished — re-running it must converge
            b.db.save_to(&store).expect("healing save");
            store.checkpoint().expect("healing checkpoint");
            let store = reopen(&fs);
            let db = MirrorDbms::open_from(&store).expect("open after healing save");
            prop_assert_eq!(&probe(&db), &b.probes, "healed after crash at write {}", w);
        }
        Err(other) => {
            return Err(TestCaseError::fail(format!(
                "crash at write {w} (torn {torn}): unexpected error kind: {other}"
            )))
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Deterministic tests
// ---------------------------------------------------------------------------

#[test]
fn cold_open_from_checkpointed_pages_matches_live_instance() {
    let b = baseline();
    let store = reopen(&b.saved);
    assert_eq!(store.recovery().wal_keys, 0, "checkpoint should have folded the WAL");
    let db = MirrorDbms::open_from(&store).unwrap();
    assert_eq!(probe(&db), b.probes);
    assert_eq!(db.n_docs(), b.db.n_docs());
    assert_eq!(db.library_rows(), b.db.library_rows());
}

#[test]
fn cold_open_from_wal_only_store_replays_the_log() {
    let b = baseline();
    let store = reopen(&b.wal_only);
    let rec = store.recovery();
    assert!(rec.wal_transactions > 0, "expected WAL replay, got {rec:?}");
    let db = MirrorDbms::open_from(&store).unwrap();
    assert_eq!(probe(&db), b.probes);
}

#[test]
fn torn_wal_tail_is_discarded_not_fatal() {
    let b = baseline();
    let fs = b.wal_only.fork();
    // a crash tore the last record: append a partial frame
    fs.append("wal.log", &[0xAB, 0x00, 0x00, 0x00, 0x17, 0x9c, 0x4e]).unwrap();
    let store = reopen(&fs);
    assert!(store.recovery().bytes_discarded > 0, "torn tail went unnoticed");
    let db = MirrorDbms::open_from(&store).unwrap();
    assert_eq!(probe(&db), b.probes);
}

#[test]
fn crash_at_every_write_recovers_or_reports_incomplete() {
    let b = baseline();
    for w in 0..b.total_writes {
        crash_and_check(w, 0).unwrap();
    }
}

#[test]
fn fresh_directory_reports_incomplete_state() {
    let store = reopen(&MemFs::new());
    match MirrorDbms::open_from(&store) {
        Err(RetrievalError::IncompleteState { detail }) => {
            assert!(detail.contains("no completion marker"), "detail: {detail}")
        }
        Ok(db) => panic!("expected IncompleteState, got an instance with {} docs", db.n_docs()),
        Err(other) => panic!("expected IncompleteState, got {other}"),
    }
}

#[test]
fn pool_of_two_pages_and_unbounded_pool_rank_identically() {
    let b = baseline();
    let tiny = Store::open(Arc::new(b.saved.fork()), StoreOptions { pool_pages: 2 }).unwrap();
    let unbounded = Store::open(Arc::new(b.saved.fork()), StoreOptions { pool_pages: 0 }).unwrap();
    let db_tiny = MirrorDbms::open_from(&tiny).unwrap();
    let db_unbounded = MirrorDbms::open_from(&unbounded).unwrap();
    assert_eq!(probe(&db_tiny), b.probes);
    assert_eq!(probe(&db_unbounded), b.probes);
    let stats = tiny.pool_stats();
    assert!(stats.evictions > 0, "a 2-page pool never evicting is not a pool: {stats:?}");
}

#[test]
fn flip_during_write_is_caught_on_reopen() {
    // silent corruption *on the write path*: the checkpoint's first page
    // write lands with one bit flipped
    let b = baseline();
    let fs = MemFs::new();
    let store = Store::open(Arc::new(fs.clone()), StoreOptions::default()).unwrap();
    b.db.save_to(&store).unwrap();
    drop(store);
    // count the WAL writes so the flip targets the checkpoint phase
    let counter = Arc::new(FaultFs::new(Arc::new(fs.fork()), FaultPlan::default()));
    let probe_store = Store::open(counter.clone(), StoreOptions::default()).unwrap();
    probe_store.checkpoint().unwrap();
    drop(probe_store);
    let flip = BitFlip { write_index: 0, offset: 40, mask: 0x10 };
    let flipping = Arc::new(FaultFs::new(
        Arc::new(fs.clone()),
        FaultPlan { crash_at_write: None, torn_bytes: 0, flips: vec![flip] },
    ));
    let store = Store::open(flipping, StoreOptions::default()).unwrap();
    store.checkpoint().unwrap();
    drop(store);
    // the flipped page must be detected — recovery falls back to the WAL
    // generation or open reports corruption; either way the flipped bytes
    // are never served as results
    let store = reopen(&fs);
    match MirrorDbms::open_from(&store) {
        Ok(db) => assert_eq!(probe(&db), b.probes),
        Err(RetrievalError::Storage(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("checksum") || msg.contains("corrupt"), "untyped: {msg}")
        }
        Err(RetrievalError::IncompleteState { .. }) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
    }
}

#[test]
fn cluster_shards_persist_and_reopen_independently() {
    let corpus = corpus();
    let cluster = MirrorCluster::build(&corpus, 2, 2).unwrap();
    let dir = scratch_dir("cluster");
    cluster.save(&dir).unwrap();

    let reopened = MirrorCluster::open(&dir).unwrap();
    assert_eq!(probe(&reopened), probe(&cluster));
    assert_eq!(reopened.stats().shards, 2);

    // a shard directory is a complete store of its own: open one without
    // its siblings and it serves its slice of the corpus
    let shard0 = MirrorDbms::open(dir.join("shard-000")).unwrap();
    assert_eq!(shard0.n_docs(), cluster.shard_docs(0).len());
    assert!(!shard0.query_text("sunset over the water", 5).unwrap().is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bumped_index_format_roundtrips_through_save_and_open() {
    let b = baseline();
    let store = reopen(&b.saved);
    // the persisted annotation index is the versioned block-compressed
    // blob (presence byte, then magic + version), stored compressed —
    // nothing is decoded on the way to disk
    let blob = store.get("idx/annotation").unwrap().expect("annotation index present");
    assert_eq!(blob[0], 1, "presence byte");
    assert_eq!(&blob[1..8], b"MIRRIDX");
    assert_eq!(u32::from(blob[8]), u32::from(mirror::ir::INDEX_FORMAT_VERSION));
    let idx = mirror::ir::InvertedIndex::from_bytes(&blob[1..]).unwrap();
    assert!(idx.n_docs() > 0);
    // and the reopened instance ranks bit-identically through it
    let db = MirrorDbms::open_from(&store).unwrap();
    assert_eq!(probe(&db), b.probes);
}

#[test]
fn store_with_previous_format_version_is_rejected_typed() {
    let b = baseline();
    let fs = b.saved.fork();
    {
        let store = reopen(&fs);
        // rewrite the format cell as the pre-compression v1 layout
        let mut stale = 1u32.to_le_bytes().to_vec();
        stale.extend_from_slice(&0xFEFFu16.to_le_bytes());
        store.put("meta/format", stale);
        store.commit().unwrap();
    }
    let store = reopen(&fs);
    match MirrorDbms::open_from(&store) {
        Err(RetrievalError::Storage(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("version") && msg.contains('1'), "untyped rejection: {msg}");
        }
        Ok(_) => panic!("v1 store opened silently"),
        Err(other) => panic!("expected a format-version error, got {other}"),
    }
}

#[test]
fn disk_roundtrip_matches_memory_roundtrip() {
    let b = baseline();
    let dir = scratch_dir("disk");
    b.db.save(&dir).unwrap();
    let db = MirrorDbms::open(&dir).unwrap();
    assert_eq!(probe(&db), b.probes);
    // saving again over the same directory converges, not corrupts
    db.save(&dir).unwrap();
    let again = MirrorDbms::open(&dir).unwrap();
    assert_eq!(probe(&again), b.probes);
    std::fs::remove_dir_all(&dir).ok();
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mirror-crash-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

// ---------------------------------------------------------------------------
// Live ingest: crash mid-delta-append and mid-merge
// ---------------------------------------------------------------------------

/// The contract: a durable live session killed at *any* backend write
/// reopens to the state of **some op prefix** of its write sequence —
/// the old generation wins if the crash hit a merge, the committed WAL
/// ops replay if it hit a delta append — never a torn hybrid. A write
/// is only acknowledged after its WAL record commits, so every
/// acknowledged op survives.
/// Live comparisons drop the oid: live arrival oids and a re-ingest's
/// dense oids differ by a monotone bijection once deletes exist, so
/// bit-identity is judged on the `(url, score)` sequences.
type KeyedProbes = Vec<Vec<(String, f64)>>;

fn keyed(runs: Vec<Vec<RankedResult>>) -> KeyedProbes {
    runs.into_iter().map(|hits| hits.into_iter().map(|h| (h.url, h.score)).collect()).collect()
}

struct LiveBaseline {
    base_rows: Vec<LibraryRow>,
    /// Reference probes of every op-prefix state (index = ops applied).
    prefix_probes: Vec<KeyedProbes>,
    /// Backend writes in the fault-free scripted session.
    total_writes: u64,
    /// Writes issued by the time `create_durable` returned — before
    /// this point a crash may leave a never-initialised store.
    writes_at_init: u64,
}

/// The scripted session: ops 1–5 around two merges, so the crash sweep
/// covers delta appends, a merge between ops, and a trailing merge.
fn live_base(b: &Baseline) -> MirrorDbms {
    let rows = b.db.library_rows()[..10].to_vec();
    MirrorDbms::from_rows(
        b.db.config().clone(),
        rows,
        b.db.vocabulary().cloned(),
        b.db.thesaurus().cloned(),
    )
    .unwrap()
}

fn run_live_script(b: &Baseline, store: Arc<Store>) -> Result<(), RetrievalError> {
    let rows = b.db.library_rows();
    let live = LiveMirror::create_durable(live_base(b), store)?;
    live.insert_rows(rows[10..12].to_vec())?; // op 1
    live.insert_rows(rows[12..14].to_vec())?; // op 2
    live.delete(&rows[0].url)?; //                op 3
    live.merge()?;
    live.insert_rows(rows[14..16].to_vec())?; // op 4
    live.delete(&rows[11].url)?; //               op 5
    live.merge()?;
    Ok(())
}

fn live_baseline() -> &'static LiveBaseline {
    static LB: OnceLock<LiveBaseline> = OnceLock::new();
    LB.get_or_init(|| {
        let b = baseline();
        let rows = b.db.library_rows();
        let base_rows = rows[..10].to_vec();

        // reference state after each op prefix (merges don't change contents)
        let mut surviving: Vec<LibraryRow> = base_rows.clone();
        let mut prefix_probes = Vec::new();
        let reference = |rows: &[LibraryRow]| {
            MirrorDbms::from_rows(
                b.db.config().clone(),
                rows.to_vec(),
                b.db.vocabulary().cloned(),
                b.db.thesaurus().cloned(),
            )
            .unwrap()
        };
        prefix_probes.push(keyed(probe(&reference(&surviving))));
        let op = |surviving: &mut Vec<LibraryRow>, change: &dyn Fn(&mut Vec<LibraryRow>)| {
            change(surviving);
            keyed(probe(&reference(surviving)))
        };
        prefix_probes.push(op(&mut surviving, &|s| s.extend(rows[10..12].to_vec())));
        prefix_probes.push(op(&mut surviving, &|s| s.extend(rows[12..14].to_vec())));
        prefix_probes.push(op(&mut surviving, &|s| s.retain(|r| r.url != rows[0].url)));
        prefix_probes.push(op(&mut surviving, &|s| s.extend(rows[14..16].to_vec())));
        prefix_probes.push(op(&mut surviving, &|s| s.retain(|r| r.url != rows[11].url)));

        // count the session's writes fault-free, marking initialisation
        let fs = MemFs::new();
        let counter = Arc::new(FaultFs::new(Arc::new(fs.clone()), FaultPlan::default()));
        let store = Arc::new(Store::open(counter.clone(), StoreOptions::default()).unwrap());
        let live = LiveMirror::create_durable(live_base(b), Arc::clone(&store)).unwrap();
        let writes_at_init = counter.writes_issued();
        live.insert_rows(rows[10..12].to_vec()).unwrap();
        live.insert_rows(rows[12..14].to_vec()).unwrap();
        live.delete(&rows[0].url).unwrap();
        live.merge().unwrap();
        live.insert_rows(rows[14..16].to_vec()).unwrap();
        live.delete(&rows[11].url).unwrap();
        live.merge().unwrap();
        let total_writes = counter.writes_issued();
        assert!(total_writes > writes_at_init, "script must write past initialisation");

        // sanity: the fault-free session serves the final prefix state
        assert_eq!(&keyed(probe(&live)), prefix_probes.last().unwrap());

        LiveBaseline { base_rows, prefix_probes, total_writes, writes_at_init }
    })
}

/// Kill the scripted live session at write `w`, reopen, and hold the
/// recovered state to the some-op-prefix contract.
fn live_crash_and_check(w: u64, torn: usize) -> Result<(), TestCaseError> {
    let b = baseline();
    let lb = live_baseline();
    let fs = MemFs::new();
    let plan = FaultPlan { crash_at_write: Some(w), torn_bytes: torn, flips: vec![] };
    let fault = Arc::new(FaultFs::new(Arc::new(fs.clone()), plan));
    let crashed = (|| -> Result<(), RetrievalError> {
        let store = Arc::new(Store::open(fault.clone(), StoreOptions::default())?);
        run_live_script(b, store)
    })();
    prop_assert!(crashed.is_err(), "live crash at write {w} (torn {torn}) did not fire");
    prop_assert!(fault.crashed());

    let store = Arc::new(reopen(&fs));
    match LiveMirror::open_durable(store) {
        Ok(live) => {
            let got = keyed(probe(&live));
            let prefix = lb.prefix_probes.iter().position(|p| p == &got);
            prop_assert!(
                prefix.is_some(),
                "crash at write {} (torn {}): reopened state matches no op prefix ({} docs)",
                w,
                torn,
                live.n_docs()
            );
        }
        Err(RetrievalError::IncompleteState { .. }) => {
            // only legitimate before create_durable ever acknowledged
            prop_assert!(
                w < lb.writes_at_init,
                "crash at write {} (torn {}): initialised store reopened incomplete",
                w,
                torn
            );
        }
        Err(other) => {
            return Err(TestCaseError::fail(format!(
                "live crash at write {w} (torn {torn}): unexpected error kind: {other}"
            )))
        }
    }
    Ok(())
}

#[test]
fn live_session_crash_at_every_write_reopens_to_an_op_prefix() {
    let lb = live_baseline();
    for w in 0..lb.total_writes {
        live_crash_and_check(w, 0).unwrap();
    }
}

#[test]
fn live_session_clean_reopen_resumes_writes_with_fresh_sequence_numbers() {
    let b = baseline();
    let lb = live_baseline();
    let fs = MemFs::new();
    let store = Arc::new(Store::open(Arc::new(fs.clone()), StoreOptions::default()).unwrap());
    run_live_script(b, store).unwrap();

    let reopened = LiveMirror::open_durable(Arc::new(reopen(&fs))).unwrap();
    assert_eq!(&keyed(probe(&reopened)), lb.prefix_probes.last().unwrap());

    // writes continue durably after reopen: insert, reopen again, verify
    let extra = LibraryRow {
        url: "http://live/extra".into(),
        annotation: Some("sunset over the water again".into()),
        vterms: lb.base_rows[0].vterms.clone(),
        theme: 0,
    };
    reopened.insert_rows(vec![extra.clone()]).unwrap();
    let expected = keyed(probe(&reopened));
    drop(reopened);
    let again = LiveMirror::open_durable(Arc::new(reopen(&fs))).unwrap();
    assert_eq!(keyed(probe(&again)), expected);
    assert_eq!(again.pin().surviving_rows().last().unwrap(), &extra);
}

#[test]
fn live_torn_wal_tail_after_delta_appends_reopens_to_committed_prefix() {
    let b = baseline();
    let lb = live_baseline();
    let rows = b.db.library_rows();
    let fs = MemFs::new();
    {
        let store = Arc::new(Store::open(Arc::new(fs.clone()), StoreOptions::default()).unwrap());
        let live = LiveMirror::create_durable(live_base(b), store).unwrap();
        live.insert_rows(rows[10..12].to_vec()).unwrap();
        live.insert_rows(rows[12..14].to_vec()).unwrap();
    }
    // a crash tore the tail of the op WAL: kernel recovery discards it
    fs.append("wal.log", &[0xAB, 0x00, 0x00, 0x00, 0x17, 0x9c, 0x4e]).unwrap();
    let live = LiveMirror::open_durable(Arc::new(reopen(&fs))).unwrap();
    let got = keyed(probe(&live));
    assert!(lb.prefix_probes[..3].contains(&got), "torn delta tail reopened to a non-prefix state");
}

#[test]
fn fresh_store_reports_never_initialised_live_instance() {
    let store = Arc::new(reopen(&MemFs::new()));
    match LiveMirror::open_durable(store) {
        Err(RetrievalError::IncompleteState { detail }) => {
            assert!(detail.contains("never initialised"), "detail: {detail}")
        }
        Ok(_) => panic!("opened a live instance from an empty store"),
        Err(other) => panic!("expected IncompleteState, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random kill point × random torn-tail length: recovery always ends
    /// bit-identical (directly, or after one healing save).
    #[test]
    fn prop_random_crash_with_torn_tail_recovers(frac in 0.0f64..1.0, torn in 0usize..7) {
        let b = baseline();
        let w = ((frac * b.total_writes as f64) as u64).min(b.total_writes - 1);
        crash_and_check(w, torn)?;
    }

    /// The same property for a live ingest session: random kill point ×
    /// torn tail across delta appends and merges always reopens to an
    /// op-prefix state.
    #[test]
    fn prop_live_random_crash_with_torn_tail_reopens_to_prefix(frac in 0.0f64..1.0, torn in 0usize..7) {
        let lb = live_baseline();
        let w = ((frac * lb.total_writes as f64) as u64).min(lb.total_writes - 1);
        live_crash_and_check(w, torn)?;
    }

    /// A bit flipped anywhere in a durable page file is detected at open
    /// or read time — never silently served. (Flips that land in a page's
    /// zero padding are invisible to the checksum by design: padding is
    /// never part of a decoded value, so results must still match.)
    #[test]
    fn prop_bit_flip_in_page_file_is_detected_never_served(
        file_frac in 0.0f64..1.0,
        offset_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let b = baseline();
        let fs = b.saved.fork();
        let pages: Vec<String> =
            fs.list().unwrap().into_iter().filter(|f| f.starts_with("pages-")).collect();
        prop_assert!(!pages.is_empty());
        let file = &pages[((file_frac * pages.len() as f64) as usize).min(pages.len() - 1)];
        let len = fs.read(file).unwrap().len();
        let offset = ((offset_frac * len as f64) as usize).min(len - 1);
        fs.corrupt(file, offset, 1 << bit).unwrap();

        match Store::open(Arc::new(fs.clone()), StoreOptions::default()) {
            // flip hit the footer/manifest: the whole generation is
            // rejected and, with the WAL already folded, nothing remains
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("checksum") || msg.contains("corrupt") || msg.contains("version"),
                    "untyped open failure: {}", msg
                );
            }
            Ok(store) => match MirrorDbms::open_from(&store) {
                // flip hit page padding or an undecoded region
                Ok(db) => prop_assert_eq!(&probe(&db), &b.probes),
                // flip hit a data page: checksum rejects it at read time
                Err(RetrievalError::Storage(_)) | Err(RetrievalError::IncompleteState { .. }) => {}
                Err(other) => {
                    return Err(TestCaseError::fail(format!("unexpected error kind: {other}")))
                }
            },
        }
    }
}
