//! Workspace wiring smoke test: every subsystem is reachable through the
//! umbrella crate's re-exports, and the facade constructs. If a crate is
//! dropped from the workspace or a re-export renamed, this fails at
//! compile time — it gates the build graph itself, not behaviour.

use mirror::core::{MirrorConfig, MirrorDbms};

#[test]
fn umbrella_reexports_resolve() {
    // one symbol per subsystem, through the `mirror::` paths the docs
    // advertise; referencing them is the assertion
    let _core: fn(MirrorConfig) -> MirrorDbms = MirrorDbms::new;
    let _monet = mirror::monet::Catalog::new();
    let _moa = mirror::moa::Env::new();
    let _ir = mirror::ir::IndexBuilder::new();
    let _media = mirror::media::RobotConfig::default();
    let _cluster = mirror::cluster::VocabularyBuilder::new();
    let _thesaurus = mirror::thesaurus::ThesaurusBuilder::default();
    let _daemon = mirror::daemon::Bus::new();
}

#[test]
fn facade_constructs_with_default_config() {
    let db = MirrorDbms::new(MirrorConfig::default());
    // a fresh instance has an environment but no ingested collection yet
    assert!(db.env().catalog().names().is_empty());
}

#[test]
fn kernel_is_reachable_end_to_end_through_the_umbrella() {
    // touch monet through mirror:: to prove the dependency chain links
    let bat = mirror::monet::bat::bat_of_ints(vec![3, 1, 2]);
    assert_eq!(bat.count(), 3);
    let sorted = bat.sort_tail(false);
    assert!(sorted.tail().is_sorted());
}
