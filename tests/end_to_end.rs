//! End-to-end integration tests spanning every crate: the full Section 5
//! demo pipeline, the paper's queries, and the cross-layer invariants.

use mirror::core::eval::{average_precision, precision_at_k};
use mirror::core::{Clustering, MirrorConfig, MirrorDbms, Retriever, INTERNAL};
use mirror::media::{RobotConfig, WebRobot};
use mirror::moa::QueryOutput;
use std::sync::OnceLock;

fn corpus() -> &'static Vec<mirror::media::CrawledImage> {
    static C: OnceLock<Vec<mirror::media::CrawledImage>> = OnceLock::new();
    C.get_or_init(|| {
        WebRobot::new(RobotConfig {
            n_images: 60,
            image_size: 24,
            unannotated_fraction: 0.3,
            seed: 77,
        })
        .crawl()
    })
}

fn db() -> &'static MirrorDbms {
    static DB: OnceLock<MirrorDbms> = OnceLock::new();
    DB.get_or_init(|| {
        let mut db = MirrorDbms::new(MirrorConfig { keep_raw: true, ..Default::default() });
        db.ingest(corpus()).unwrap();
        db
    })
}

#[test]
fn pipeline_builds_the_internal_schema_of_section_5() {
    let db = db();
    let meta = db.env().collection(INTERNAL).unwrap();
    assert_eq!(meta.count, 60);
    // the three attributes of ImageLibraryInternal
    assert!(meta.elem_ty.field("source").is_some());
    assert!(meta.elem_ty.field("annotation").is_some());
    assert!(meta.elem_ty.field("image").is_some());
    // flattened BATs present in the kernel catalog
    let names = db.env().catalog().names();
    for expected in [
        "ImageLibraryInternal__source",
        "ImageLibraryInternal__self",
        "ImageLibraryInternal__annotation__term",
        "ImageLibraryInternal__annotation__post_d",
        "ImageLibraryInternal__image__term",
        "ImageLibraryInternal__image__dl",
    ] {
        assert!(names.contains(&expected.to_string()), "missing {expected}");
    }
}

#[test]
fn paper_ranking_query_runs_on_both_channels() {
    let db = db();
    db.env().bind_query("e2equery", vec![("sunset".into(), 1.0)]);
    for attr in ["annotation", "image"] {
        let out = db
            .engine()
            .query(&format!("map[sum(THIS)](map[getBL(THIS.{attr}, e2equery, stats)]({INTERNAL}))"))
            .unwrap();
        assert_eq!(out.len(), 60, "channel {attr}");
    }
}

#[test]
fn text_retrieval_beats_random_on_ground_truth() {
    let db = db();
    let results = db.query_text("sunset glow dusk", 10).unwrap();
    let oids: Vec<_> = results.iter().map(|r| r.oid).collect();
    let p = precision_at_k(&oids, |o| db.docs()[o as usize].theme == 0, 10);
    // ~1/6 themes → random precision ≈ 0.17; require a clear win
    assert!(p >= 0.5, "precision@10 = {p}");
}

#[test]
fn dual_coding_reaches_unannotated_documents() {
    let db = db();
    let dual = db.query_dual("sunset glow", 0.6, 30).unwrap();
    assert!(
        dual.iter().any(|r| !db.docs()[r.oid as usize].annotated),
        "dual-coded retrieval should surface un-annotated images"
    );
}

#[test]
fn combined_structure_content_query_filters_and_ranks() {
    let db = db();
    let results = db.query_text_filtered("sunset", "/sunset/", 30).unwrap();
    assert!(!results.is_empty());
    assert!(results.iter().all(|r| r.url.contains("/sunset/")));
}

#[test]
fn relational_queries_coexist_with_ranking() {
    let db = db();
    // pure data retrieval over the same collection
    let out = db
        .engine()
        .query(&format!("select[contains(THIS.source, \"/ocean/\")]({INTERNAL})"))
        .unwrap();
    let QueryOutput::Oids(oids) = out else { panic!("expected oids") };
    assert!(!oids.is_empty());
    for oid in &oids {
        assert!(db.docs()[*oid as usize].url.contains("/ocean/"));
    }
    // count
    let out = db.engine().query(&format!("count({INTERNAL})")).unwrap();
    assert_eq!(out.scalar().and_then(|v| v.as_int()), Some(60));
}

#[test]
fn naive_interpreter_agrees_with_flattened_engine_end_to_end() {
    let db = db();
    db.env().bind_query("e2enaive", vec![("sunset".into(), 1.0), ("glow".into(), 1.0)]);
    let q = format!("map[sum(THIS)](map[getBL(THIS.annotation, e2enaive, stats)]({INTERNAL}))");
    let flat = db.engine().query(&q).unwrap();
    let naive = mirror::moa::naive::NaiveEngine::new(db.env()).query(&q).unwrap();
    let (QueryOutput::Pairs(f), QueryOutput::Pairs(n)) = (&flat, &naive) else {
        panic!("expected pairs");
    };
    for (oid, v) in n {
        let fv = f.iter().find(|(o, _)| o == oid).unwrap().1.as_float().unwrap();
        let nv = v.as_float().unwrap();
        assert!((fv - nv).abs() < 1e-9, "doc {oid}: {fv} vs {nv}");
    }
}

#[test]
fn optimizer_config_does_not_change_results() {
    let corpus = corpus();
    let mut opt_db = MirrorDbms::with_defaults();
    opt_db.ingest(corpus).unwrap();
    let mut raw_db = MirrorDbms::with_defaults();
    raw_db.ingest(corpus).unwrap();
    raw_db.set_opt(mirror::moa::OptConfig::none());
    let a = opt_db.query_text("forest moss trail", 15).unwrap();
    let b = raw_db.query_text("forest moss trail", 15).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.oid, y.oid);
        assert!((x.score - y.score).abs() < 1e-9);
    }
}

#[test]
fn kmeans_and_autoclass_pipelines_both_retrieve() {
    let corpus = corpus();
    for clustering in [Clustering::AutoClass, Clustering::KMeans(6)] {
        let mut db = MirrorDbms::new(MirrorConfig { clustering, ..Default::default() });
        db.ingest(corpus).unwrap();
        let r = db.query_dual("ocean wave", 0.5, 10).unwrap();
        assert!(!r.is_empty(), "{clustering:?} produced no results");
    }
}

#[test]
fn average_precision_of_theme_queries_is_reasonable() {
    let db = db();
    let queries = [("sunset glow", 0usize), ("forest tree moss", 1), ("ocean wave surf", 2)];
    let mut aps = Vec::new();
    for (q, theme) in queries {
        let results = db.query_dual(q, 0.5, 60).unwrap();
        let oids: Vec<_> = results.iter().map(|r| r.oid).collect();
        let n_rel = db.docs().iter().filter(|d| d.theme == theme).count();
        aps.push(average_precision(&oids, |o| db.docs()[o as usize].theme == theme, n_rel));
    }
    let map = mirror::core::eval::mean(&aps);
    assert!(map > 0.4, "mean average precision {map} too low: {aps:?}");
}

#[test]
fn parallel_facade_matches_serial_retrieval() {
    // the parallelism knob routes from MirrorConfig through the Moa engine
    // into the kernel executor; results must not depend on the degree
    let corpus = corpus();
    let mut serial_db = MirrorDbms::new(MirrorConfig { parallelism: 1, ..Default::default() });
    serial_db.ingest(corpus).unwrap();
    let mut par_db = MirrorDbms::new(MirrorConfig { parallelism: 7, ..Default::default() });
    par_db.ingest(corpus).unwrap();
    for q in ["sunset glow", "ocean wave surf"] {
        let a = serial_db.query_text(q, 20).unwrap();
        let b = par_db.query_text(q, 20).unwrap();
        assert_eq!(a.len(), b.len(), "{q}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.oid, y.oid, "{q}");
            assert!((x.score - y.score).abs() < 1e-12, "{q}: {} vs {}", x.score, y.score);
        }
    }
}

#[test]
fn executor_explain_reports_fragmentation_per_operator() {
    use mirror::monet::{
        bat::bat_of_ints, Agg, Catalog, OpRegistry, ParallelExecutor, Plan, Pred, Val,
    };
    let cat = Catalog::new();
    cat.register("sizes", bat_of_ints((0..10_000).map(|i| i % 500).collect()));
    let reg = OpRegistry::new();
    let plan = Plan::Aggr {
        input: Box::new(Plan::Select {
            input: Box::new(Plan::load("sizes")),
            pred: Pred::Range { lo: Some(Val::Int(100)), lo_incl: true, hi: None, hi_incl: true },
        }),
        agg: Agg::Sum,
    };

    // parallel executor: the scan-bound operators report their degree
    let par = ParallelExecutor::new(&cat, &reg, 4);
    let text = par.explain(&plan).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "-- degree 4 · 2 of 3 ops fragmented --");
    assert!(
        lines[1].starts_with("aggr[sum]") && lines[1].ends_with("[rows=1, fragmented ×4]"),
        "aggr line: {:?}",
        lines[1]
    );
    assert!(
        lines[2].trim_start().starts_with("select[") && lines[2].ends_with("fragmented ×4]"),
        "select line: {:?}",
        lines[2]
    );
    assert!(
        lines[3].trim_start() == "load(sizes)  [rows=10000, serial]",
        "load line: {:?}",
        lines[3]
    );

    // serial executor over the same plan: every operator reports serial
    let serial = ParallelExecutor::new(&cat, &reg, 1);
    let text = serial.explain(&plan).unwrap();
    assert!(text.starts_with("-- degree 1 · 0 of 3 ops fragmented --"), "{text}");
    assert!(!text.contains("fragmented ×"), "{text}");
    // and both executions agree on the result
    assert_eq!(par.run_bat(&plan).unwrap().to_pairs(), serial.run_bat(&plan).unwrap().to_pairs());
}

#[test]
fn catalog_is_fully_binary_relational() {
    // every registered object in the physical layer is a two-column BAT —
    // the paper's core physical claim
    let db = db();
    for name in db.env().catalog().names() {
        let bat = db.env().catalog().get(&name).unwrap();
        assert_eq!(bat.head().len(), bat.tail().len(), "BAT {name} has asymmetric columns");
    }
}
