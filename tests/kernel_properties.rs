//! Additional property-based tests on the kernel: join-strategy
//! equivalence, persistence round-trips, plan-executor consistency, and
//! group/aggregate laws.

use mirror::monet::{
    bat::{bat_of_floats, bat_of_ints},
    Agg, Bat, Catalog, Column, Executor, OpRegistry, Plan, Pred, Val,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// merge join (sorted oid inputs) and hash join agree.
    #[test]
    fn prop_merge_equals_hash_join(
        mut left_tails in proptest::collection::vec(0u32..40, 0..80),
        mut right_heads in proptest::collection::vec(0u32..40, 0..80),
    ) {
        left_tails.sort_unstable();
        right_heads.sort_unstable();
        let rn = right_heads.len();
        let l = Bat::new(Column::void(0, left_tails.len()), Column::Oid(left_tails.clone()))
            .unwrap()
            .analyze();
        let r = Bat::new(Column::Oid(right_heads.clone()), Column::void(100, rn))
            .unwrap()
            .analyze();
        // merge path (both sorted, both oid)
        let merged = l.join(&r).unwrap();
        // force the hash path by shuffling sortedness knowledge away
        let l_unsorted = Bat::new(Column::void(0, left_tails.len()), Column::Oid(left_tails))
            .unwrap(); // props unknown → hash join
        let hashed = l_unsorted.join(&r).unwrap();
        let norm = |b: &Bat| {
            let mut v = b.to_pairs();
            v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
            v
        };
        prop_assert_eq!(norm(&merged), norm(&hashed));
    }

    /// semijoin is idempotent: semijoin(semijoin(a,b), b) == semijoin(a,b).
    #[test]
    fn prop_semijoin_idempotent(
        heads_a in proptest::collection::vec(0u32..30, 0..60),
        heads_b in proptest::collection::vec(0u32..30, 0..60),
    ) {
        let na = heads_a.len();
        let nb = heads_b.len();
        let a = Bat::new(Column::Oid(heads_a), Column::void(0, na)).unwrap();
        let b = Bat::new(Column::Oid(heads_b), Column::void(0, nb)).unwrap();
        let once = a.semijoin(&b).unwrap();
        let twice = once.semijoin(&b).unwrap();
        prop_assert_eq!(once.to_pairs(), twice.to_pairs());
    }

    /// catalog persistence round-trips arbitrary int/float/string BATs.
    #[test]
    fn prop_persist_roundtrip(
        ints in proptest::collection::vec(-1000i64..1000, 0..50),
        floats in proptest::collection::vec(-1e6f64..1e6, 0..50),
        words in proptest::collection::vec("[a-z]{1,8}", 0..30),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "mirror_prop_persist_{}_{}",
            std::process::id(),
            ints.len() * 1000 + floats.len() * 10 + words.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cat = Catalog::new();
        cat.register("i", bat_of_ints(ints));
        cat.register("f", bat_of_floats(floats));
        cat.register("s", Bat::dense(words.iter().map(String::as_str).collect()));
        cat.save_dir(&dir).unwrap();
        let restored = Catalog::new();
        restored.load_dir(&dir).unwrap();
        for name in ["i", "f", "s"] {
            prop_assert_eq!(
                cat.get(name).unwrap().to_pairs(),
                restored.get(name).unwrap().to_pairs(),
                "BAT {} diverged", name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// the plan executor computes the same result as direct operator calls.
    #[test]
    fn prop_plan_matches_direct(
        vals in proptest::collection::vec(-100i64..100, 1..100),
        lo in -100i64..100,
        k in 1usize..10,
    ) {
        let cat = Catalog::new();
        let reg = OpRegistry::new();
        cat.register("v", bat_of_ints(vals.clone()));
        let exec = Executor::new(&cat, &reg);
        let plan = Plan::TopN {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::load("v")),
                pred: Pred::Range {
                    lo: Some(Val::Int(lo)),
                    lo_incl: true,
                    hi: None,
                    hi_incl: true,
                },
            }),
            k,
            desc: true,
        };
        let via_plan = exec.run_bat(&plan).unwrap();
        let direct = bat_of_ints(vals)
            .select_range(
                std::ops::Bound::Included(&Val::Int(lo)),
                std::ops::Bound::Unbounded,
            )
            .unwrap()
            .topn_tail(k, true);
        prop_assert_eq!(via_plan.to_pairs(), direct.to_pairs());
    }

    /// sum over groups equals total sum (no value lost or duplicated).
    #[test]
    fn prop_grouped_sum_conserves_total(
        vals in proptest::collection::vec(-100i64..100, 1..100),
        n_groups in 1u32..6,
    ) {
        let n = vals.len();
        let groups: Vec<u32> = (0..n as u32).map(|i| i % n_groups).collect();
        let v = bat_of_ints(vals.clone());
        let g = Bat::dense(Column::Oid(groups));
        let per_group = v.grouped_agg(&g, Agg::Sum).unwrap();
        let group_total: i64 = per_group
            .to_pairs()
            .iter()
            .map(|(_, t)| t.as_int().unwrap())
            .sum();
        prop_assert_eq!(group_total, vals.iter().sum::<i64>());
    }

    /// group ids are dense and representative values match first occurrence.
    #[test]
    fn prop_group_ids_dense(vals in proptest::collection::vec(0i64..10, 1..80)) {
        let b = bat_of_ints(vals.clone());
        let (map, groups) = b.group().unwrap();
        let distinct: std::collections::HashSet<i64> = vals.iter().copied().collect();
        prop_assert_eq!(groups.count(), distinct.len());
        // every gid in the map is < number of groups
        for (_, gid) in map.to_pairs() {
            prop_assert!((gid.as_oid().unwrap() as usize) < groups.count());
        }
        // rows with equal values share a gid
        let gids: Vec<u32> =
            map.to_pairs().iter().map(|(_, g)| g.as_oid().unwrap()).collect();
        for i in 0..vals.len() {
            for j in (i + 1)..vals.len() {
                if vals[i] == vals[j] {
                    prop_assert_eq!(gids[i], gids[j]);
                }
            }
        }
    }

    /// kunion cardinality equals the size of the head-set union.
    #[test]
    fn prop_kunion_cardinality(
        a in proptest::collection::hash_set(0u32..40, 0..30),
        b in proptest::collection::hash_set(0u32..40, 0..30),
    ) {
        let mk = |hs: &std::collections::HashSet<u32>| {
            let v: Vec<u32> = hs.iter().copied().collect();
            let n = v.len();
            Bat::new(Column::Oid(v), Column::void(0, n)).unwrap()
        };
        let u = mk(&a).kunion(&mk(&b)).unwrap();
        prop_assert_eq!(u.count(), a.union(&b).count());
    }

    /// sort is a permutation: same multiset of pairs before and after.
    #[test]
    fn prop_sort_is_permutation(vals in proptest::collection::vec(-50i64..50, 0..100)) {
        let b = bat_of_ints(vals);
        let sorted = b.sort_tail(false);
        let norm = |x: &Bat| {
            let mut v = x.to_pairs();
            v.sort_by(|p, q| p.0.total_cmp(&q.0));
            v
        };
        prop_assert_eq!(norm(&b), norm(&sorted));
        // and the tails really are sorted
        prop_assert!(sorted.tail().is_sorted());
    }
}
