//! Property tests for the fused streaming top-k retrieval path: for any
//! corpus and query, `topk_bl` must return exactly the `(oid, score)`
//! ranking that materialise-then-sort produces — same documents, same
//! bit-identical scores, same tie-breaks — for k ∈ {1, 10, all} and at
//! parallel degrees 1 and 4.

use mirror::ir::{
    self, porter_stem, topk_beliefs, topk_beliefs_raw, BeliefParams, IndexBuilder, RawPostings,
};
use mirror::moa::{parse_define, Env, MoaEngine, MoaVal, OptConfig, QueryParams};
use mirror::monet::Oid;
use proptest::prelude::*;
use std::sync::Arc;

const POOL: &[&str] =
    &["sunset", "beach", "forest", "mist", "wave", "glow", "stone", "river", "meadow", "dune"];

/// A text library over CONTREP annotations built from pool-word indices.
fn build_env(docs: &[Vec<usize>]) -> Arc<Env> {
    let env = Env::new();
    ir::register_contrep(&env);
    let (name, ty) =
        parse_define("define Lib as SET<TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation >>;")
            .unwrap();
    let rows: Vec<MoaVal> = docs
        .iter()
        .enumerate()
        .map(|(i, words)| {
            let text: Vec<&str> = words.iter().map(|&w| POOL[w % POOL.len()]).collect();
            MoaVal::Tuple(vec![MoaVal::Str(format!("http://lib/{i}")), MoaVal::Str(text.join(" "))])
        })
        .collect();
    env.create_collection(name, ty, rows).unwrap();
    Arc::new(env)
}

/// Stemmed, weighted query terms from pool indices.
fn query_terms(q: &[(usize, f64)]) -> Vec<(String, f64)> {
    q.iter().map(|(w, wt)| (porter_stem(POOL[w % POOL.len()]), *wt)).collect()
}

const RANKING: &str = "map[sum(THIS)](map[getBL(THIS.annotation, pq, stats)](Lib))";

/// The materialise-then-sort baseline, computed at serial degree.
fn baseline(env: &Arc<Env>, terms: &[(String, f64)], k: usize) -> Vec<(Oid, f64)> {
    let eng =
        MoaEngine::with_opt(Arc::clone(env), OptConfig { parallelism: 1, ..Default::default() });
    let params = QueryParams::new().bind("pq", terms.to_vec());
    let out = eng.query_with(RANKING, &params).unwrap();
    let mut pairs: Vec<(Oid, f64)> = out
        .pairs()
        .unwrap()
        .iter()
        .filter_map(|(o, v)| v.as_float().map(|f| (*o, f)))
        .filter(|(_, s)| *s > 0.0)
        .collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// The fused path at a given parallel degree.
fn fused(env: &Arc<Env>, terms: &[(String, f64)], k: usize, degree: usize) -> Vec<(Oid, f64)> {
    let eng = MoaEngine::with_opt(
        Arc::clone(env),
        OptConfig { parallelism: degree, ..Default::default() },
    );
    let params = QueryParams::new().bind("pq", terms.to_vec()).with_top_k(k);
    let out = eng.query_with(RANKING, &params).unwrap();
    out.pairs().unwrap().iter().map(|(o, v)| (*o, v.as_float().unwrap())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused top-k ≡ materialise+sort for k ∈ {1, 10, all}, degrees 1 and 4.
    #[test]
    fn prop_fused_topk_equals_materialise_then_sort(
        docs in proptest::collection::vec(
            proptest::collection::vec(0usize..POOL.len(), 1..8), 1..60),
        query in proptest::collection::vec((0usize..POOL.len(), 0.1f64..2.0), 1..4),
    ) {
        let env = build_env(&docs);
        let terms = query_terms(&query);
        for k in [1usize, 10, docs.len()] {
            let expected = baseline(&env, &terms, k);
            for degree in [1usize, 4] {
                let got = fused(&env, &terms, k, degree);
                prop_assert_eq!(&got, &expected, "k={} degree={}", k, degree);
            }
        }
    }

    /// The ir-level streaming evaluation is degree-invariant and its k-cut
    /// is a prefix of the full ranking.
    #[test]
    fn prop_topk_beliefs_degree_invariant(
        docs in proptest::collection::vec(
            proptest::collection::vec(0usize..POOL.len(), 0..10), 1..80),
        query in proptest::collection::vec((0usize..POOL.len(), 0.25f64..2.0), 1..4),
        k in 1usize..12,
    ) {
        let mut b = IndexBuilder::new();
        for words in &docs {
            let toks: Vec<&str> = words.iter().map(|&w| POOL[w % POOL.len()]).collect();
            b.add_tokens(&toks);
        }
        let index = b.build();
        let q: Vec<(String, f64)> =
            query.iter().map(|(w, wt)| (POOL[w % POOL.len()].to_string(), *wt)).collect();
        let qr: Vec<(&str, f64)> = q.iter().map(|(t, w)| (t.as_str(), *w)).collect();
        let params = BeliefParams::default();
        let full = topk_beliefs(&index, params, &qr, None, docs.len(), 1);
        let serial = topk_beliefs(&index, params, &qr, None, k, 1);
        let parallel = topk_beliefs(&index, params, &qr, None, k, 4);
        prop_assert_eq!(&serial.hits, &parallel.hits);
        let cut = k.min(full.hits.len());
        prop_assert_eq!(&serial.hits[..], &full.hits[..cut]);
    }

    /// Block-compressed evaluation with block-max skipping returns exactly
    /// the raw-vec reference ranking — same docs, bit-identical scores —
    /// for k ∈ {1, 10, all} at degrees 1 and 4.
    #[test]
    fn prop_compressed_skipping_equals_raw_path(
        docs in proptest::collection::vec(
            proptest::collection::vec(0usize..POOL.len(), 0..10), 1..80),
        query in proptest::collection::vec((0usize..POOL.len(), 0.25f64..2.0), 1..4),
    ) {
        let mut b = IndexBuilder::new();
        for words in &docs {
            let toks: Vec<&str> = words.iter().map(|&w| POOL[w % POOL.len()]).collect();
            b.add_tokens(&toks);
        }
        let index = b.build();
        let raw = RawPostings::from_index(&index);
        let q: Vec<(String, f64)> =
            query.iter().map(|(w, wt)| (POOL[w % POOL.len()].to_string(), *wt)).collect();
        let qr: Vec<(&str, f64)> = q.iter().map(|(t, w)| (t.as_str(), *w)).collect();
        let params = BeliefParams::default();
        for k in [1usize, 10, docs.len()] {
            for degree in [1usize, 4] {
                let fast = topk_beliefs(&index, params, &qr, None, k, degree);
                let slow = topk_beliefs_raw(&index, &raw, params, &qr, None, k, degree);
                prop_assert_eq!(&fast.hits, &slow.hits, "k={} degree={}", k, degree);
            }
        }
    }
}

/// Engine-level parallel coverage: a corpus above the executor's
/// `min_fragment_rows` threshold (4096) makes the fused operator actually
/// fragment at degree 4 through the executor, and the result must still be
/// bit-identical to the serial materialise+sort baseline.
#[test]
fn fused_parallel_on_large_corpus_matches_baseline() {
    let docs: Vec<Vec<usize>> = (0..4500)
        .map(|i| vec![i % 10, (i * 3 + 1) % 10, (i * 7 + 2) % 10, (i / 11) % 10])
        .collect();
    let env = build_env(&docs);
    let terms = query_terms(&[(0, 1.0), (3, 1.0), (7, 0.5)]);
    for k in [1usize, 10, docs.len()] {
        let expected = baseline(&env, &terms, k);
        assert!(!expected.is_empty());
        for degree in [1usize, 4] {
            assert_eq!(fused(&env, &terms, k, degree), expected, "k={k} degree={degree}");
        }
    }
}

/// Deterministic sanity: the fused plan really is fused (EXPLAIN shows the
/// operator, not a grouped sum) and returns non-empty results.
#[test]
fn fusion_fires_and_finds_documents() {
    let docs: Vec<Vec<usize>> = (0..50).map(|i| vec![i % 10, (i * 3) % 10, (i * 7) % 10]).collect();
    let env = build_env(&docs);
    let terms = query_terms(&[(0, 1.0), (4, 1.0)]);
    let eng = MoaEngine::new(Arc::clone(&env));
    let params = QueryParams::new().bind("pq", terms.clone()).with_top_k(5);
    let plan = eng.explain_with(RANKING, &params).unwrap();
    assert!(plan.contains("custom[contrep.getbl.topk]"), "{plan}");
    let hits = fused(&env, &terms, 5, 1);
    assert_eq!(hits.len(), 5);
    assert_eq!(hits, baseline(&env, &terms, 5));
}
