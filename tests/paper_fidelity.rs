//! Fidelity tests: the *verbatim* schema definitions and queries printed
//! in the paper must parse and run, including the paper's own spacing and
//! capitalisation quirks.

use mirror::ir::register_contrep;
use mirror::moa::{parse_define, Env, MoaEngine, MoaVal};
use std::sync::Arc;

/// Section 3, verbatim (the paper prints `TraditionalimgLib` with a
/// lowercase "img").
const SECTION_3_SCHEMA: &str = "define TraditionalimgLib as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation
>>;";

/// Section 3's query, with the paper's spacing.
const SECTION_3_QUERY: &str = "map[sum(THIS)] (
  map[getBL(THIS.annotation,
    query, stats)] ( TraditionalimgLib ));";

/// Section 5.2, the user-facing schema.
const SECTION_5_SCHEMA: &str = "define ImageLibrary as
SET<
  TUPLE<
    Atomic<URL>: source,
    Atomic<Text>: annotation,
    Atomic<Image>: image
>>;";

/// Section 5.2, the internal schema after the daemons have worked.
const SECTION_5_INTERNAL: &str = "define ImageLibraryinternal as
SET<
  TUPLE<
    Atomic<URL>: source,
    CONTREP<Text>: annotation,
    CONTREP<Image>: image
>>;";

/// Section 5.2's retrieval query.
const SECTION_5_QUERY: &str = "map [sum (THIS)] (
  map[getBL(THIS.image,
    query, stats)] ( ImageLibraryinternal )) ;";

#[test]
fn section_3_schema_parses_verbatim() {
    let (name, ty) = parse_define(SECTION_3_SCHEMA).unwrap();
    assert_eq!(name, "TraditionalimgLib");
    let elem = ty.elem().unwrap();
    assert_eq!(elem.fields().unwrap().len(), 2);
}

#[test]
fn section_5_schemas_parse_verbatim() {
    let (name, ty) = parse_define(SECTION_5_SCHEMA).unwrap();
    assert_eq!(name, "ImageLibrary");
    assert_eq!(ty.elem().unwrap().fields().unwrap().len(), 3);
    let (name, ty) = parse_define(SECTION_5_INTERNAL).unwrap();
    assert_eq!(name, "ImageLibraryinternal");
    assert_eq!(ty.elem().unwrap().fields().unwrap().len(), 3);
}

#[test]
fn intermediate_schema_with_nested_segments_parses() {
    // the unnamed intermediate schema of Section 5.2
    let ty = mirror::moa::parse_type(
        "SET<
           TUPLE<
             Atomic<URL>: source,
             CONTREP<Text>: annotation,
             SET<
               TUPLE<
                 Atomic< Image >: segment,
                 Atomic< Vector >: RGB,
                 Atomic< Vector >: Gabor
             > >: image_segments
         >>;",
    )
    .unwrap();
    let segs = ty.elem().unwrap().field("image_segments").unwrap();
    assert_eq!(segs.elem().unwrap().fields().unwrap().len(), 3);
}

#[test]
fn section_3_query_parses_and_runs_verbatim() {
    let env = Env::new();
    register_contrep(&env);
    let (name, ty) = parse_define(SECTION_3_SCHEMA).unwrap();
    let rows = vec![
        MoaVal::Tuple(vec![MoaVal::str("http://a"), MoaVal::str("a red sunset")]),
        MoaVal::Tuple(vec![MoaVal::str("http://b"), MoaVal::str("green forest moss")]),
    ];
    env.create_collection(name, ty, rows).unwrap();
    env.bind_query("query", vec![("sunset".into(), 1.0)]);
    let env = Arc::new(env);
    let out = MoaEngine::new(env).query(SECTION_3_QUERY).unwrap();
    let pairs = out.pairs().unwrap();
    assert_eq!(pairs.len(), 2);
    let s0 = pairs.iter().find(|(o, _)| *o == 0).unwrap().1.as_float().unwrap();
    let s1 = pairs.iter().find(|(o, _)| *o == 1).unwrap().1.as_float().unwrap();
    assert!(s0 > s1, "sunset doc must outrank forest doc: {s0} vs {s1}");
}

#[test]
fn section_5_query_parses_and_runs_verbatim() {
    let env = Env::new();
    register_contrep(&env);
    let (name, ty) = parse_define(SECTION_5_INTERNAL).unwrap();
    let rows = vec![
        MoaVal::Tuple(vec![
            MoaVal::str("http://a"),
            MoaVal::str("a red sunset"),
            MoaVal::str("rgb_0 gabor_21 rgb_0"),
        ]),
        MoaVal::Tuple(vec![MoaVal::str("http://b"), MoaVal::Null, MoaVal::str("rgb_1 gabor_5")]),
    ];
    env.create_collection(name, ty, rows).unwrap();
    // "Assuming that the result is a Moa expression called query" — the
    // thesaurus produced visual terms:
    env.bind_query("query", vec![("gabor_21".into(), 0.7), ("rgb_0".into(), 0.3)]);
    let env = Arc::new(env);
    let out = MoaEngine::new(env).query(SECTION_5_QUERY).unwrap();
    let pairs = out.pairs().unwrap();
    assert_eq!(pairs.len(), 2);
    // doc 0 holds the queried clusters; the un-annotated doc 1 is still
    // scored (through its image channel), which is the paper's point
    let s0 = pairs.iter().find(|(o, _)| *o == 0).unwrap().1.as_float().unwrap();
    let s1 = pairs.iter().find(|(o, _)| *o == 1).unwrap().1.as_float().unwrap();
    assert!(s0 > s1);
}

#[test]
fn combining_with_normal_relational_operators() {
    // "these query expressions can be combined with 'normal' relational
    // operators (such as select or join)"
    let env = Env::new();
    register_contrep(&env);
    let (name, ty) = parse_define(SECTION_3_SCHEMA).unwrap();
    let rows: Vec<MoaVal> = (0..10)
        .map(|i| {
            MoaVal::Tuple(vec![
                MoaVal::Str(format!("http://site{}/img", i % 2)),
                MoaVal::str(if i < 5 { "sunset beach" } else { "forest moss" }),
            ])
        })
        .collect();
    env.create_collection(name, ty, rows).unwrap();
    env.bind_query("query", vec![("sunset".into(), 1.0)]);
    let env = Arc::new(env);
    let out = MoaEngine::new(env)
        .query(
            "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](
               select[contains(THIS.source, \"site0\")](TraditionalimgLib)))",
        )
        .unwrap();
    // only the five site0 documents are ranked
    assert_eq!(out.len(), 5);
}
