//! # mirror — the Mirror MMDBMS, reassembled
//!
//! A from-scratch Rust reproduction of *"The Mirror MMDBMS architecture"*
//! (A.P. de Vries, M.G.L.M. van Doorn, H.M. Blanken, P.M.G. Apers,
//! VLDB 1999): an extensible object-oriented logical data model (the Moa
//! object algebra) implemented on a binary-relational physical data model
//! (a Monet-style BAT kernel), with the inference-network retrieval model
//! integrated as the `CONTREP` structure, an open distributed daemon
//! architecture for metadata extraction, and the dual-coding image
//! retrieval demo application on top.
//!
//! This umbrella crate re-exports every subsystem:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`monet`] | `mirror-monet` | binary-relational kernel (BATs, algebra, plans) |
//! | [`moa`] | `mirror-moa` | Moa object algebra: parsing, flattening, rewriting |
//! | [`ir`] | `mirror-ir` | inference network retrieval + `CONTREP` |
//! | [`media`] | `mirror-media` | corpus simulator, segmentation, features |
//! | [`cluster`] | `mirror-cluster` | AutoClass substitute + k-means |
//! | [`thesaurus`] | `mirror-thesaurus` | association thesaurus (dual coding) |
//! | [`daemon`] | `mirror-daemon` | open distributed architecture (Fig. 1) |
//! | [`core`] | `mirror-core` | the Mirror DBMS facade |
//!
//! ## Quickstart
//!
//! ```
//! use mirror::core::{MirrorDbms, MirrorConfig, Retriever};
//! use mirror::media::{WebRobot, RobotConfig};
//!
//! // crawl a small synthetic library and ingest it
//! let corpus = WebRobot::new(RobotConfig { n_images: 12, ..Default::default() }).crawl();
//! let mut db = MirrorDbms::new(MirrorConfig::default());
//! db.ingest(&corpus).unwrap();
//!
//! // the typed retrieval API (every backend implements `Retriever`)
//! let hits = db.query_text("sunset", 5).unwrap();
//! assert!(hits.len() <= 5);
//!
//! // the paper's ranking query, verbatim, on the embedded Moa engine
//! db.env().bind_query("query", vec![("sunset".into(), 1.0)]);
//! let out = db
//!     .engine()
//!     .query("map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](ImageLibraryInternal))")
//!     .unwrap();
//! assert_eq!(out.len(), 12);
//! ```
//!
//! ## Cluster quickstart
//!
//! Partition the same corpus across shards with replicated routing — the
//! answers are bit-identical to the single node:
//!
//! ```
//! use mirror::core::{shard::MirrorCluster, Retriever};
//! use mirror::media::{WebRobot, RobotConfig};
//!
//! let corpus = WebRobot::new(RobotConfig { n_images: 12, ..Default::default() }).crawl();
//! let cluster = MirrorCluster::build(&corpus, 2, 2).unwrap();
//! let hits = cluster.query_text("sunset", 5).unwrap();
//! assert!(hits.len() <= 5);
//! ```

#![warn(missing_docs)]

pub use mirror_core as core;

pub use cluster;
pub use daemon;
pub use ir;
pub use media;
pub use moa;
pub use monet;
pub use thesaurus;
