//! Offline stand-in for the `parking_lot` crate.
//!
//! The container image has no access to crates.io, so this vendored crate
//! provides the subset of the real API that Mirror uses: [`Mutex`] and
//! [`RwLock`] with parking_lot's ergonomics — `lock()`, `read()` and
//! `write()` return guards directly (no `Result`), and a panicked holder
//! never poisons the lock for everyone else. Implemented as thin wrappers
//! over `std::sync` primitives.

use std::fmt;
use std::sync::{PoisonError, TryLockError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive; unlike `std::sync::Mutex` it does not
/// poison on panic and `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly and a
/// panicked holder does not poison the lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still usable afterwards
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
