//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the 0.8 API that Mirror uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`Rng`] extension
//! trait with `gen`, `gen_range` (half-open and inclusive, integer and
//! float) and `gen_bool`. Statistical quality is more than adequate for
//! the synthetic corpora and clustering seeds it backs; it is *not* a
//! cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that [`Standard`] can sample uniformly.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution: floats in `[0, 1)`, full range for
/// integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Primitives that `gen_range` can draw uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`; `high` exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `high` inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let unit: f64 = Standard.sample(rng);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // floating rounding can land exactly on `high`; clamp below it
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let unit: f64 = Standard.sample(rng);
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing extension methods; blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_half_open_and_inclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_max = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
            if w == 3 {
                seen_max = true;
            }
            let f = rng.gen_range(-0.8..0.8f64);
            assert!((-0.8..0.8).contains(&f));
            let n = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&n));
        }
        assert!(seen_max, "inclusive upper bound never drawn");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
