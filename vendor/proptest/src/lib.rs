//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the API that Mirror's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { body }`,
//!   with an optional `#![proptest_config(...)]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * strategies for numeric ranges, string literals interpreted as
//!   character-class regexes (`"[a-z]{1,8}"`), strategy tuples, and
//!   [`collection::vec`] / [`collection::hash_set`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce across runs. Shrinking is not
//! implemented: a failing case reports its case number and message.

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategy implementations.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + Clone> Strategy for RangeInclusive<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// String literals are regex-style character-class patterns, e.g.
    /// `"[a-z]{1,8}"` or `"[a-zA-Z ,.!]{0,80}"`.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut StdRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng), self.2.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.new_value(rng),
                self.1.new_value(rng),
                self.2.new_value(rng),
                self.3.new_value(rng),
            )
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies: [`vec()`] and [`hash_set()`].

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `size` (half-open, like proptest's `0..80`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate hash sets; duplicates are retried a bounded number of times,
    /// so the final size may fall below the drawn target when the element
    /// domain is small.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = sample_len(&self.size, rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut StdRng) -> usize {
        if size.start >= size.end {
            size.start
        } else {
            rng.gen_range(size.clone())
        }
    }
}

pub mod string {
    //! Generation from the character-class regex subset.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generate a string matching a pattern made of character classes with
    /// optional `{min,max}` / `{n}` quantifiers, e.g. `[a-z]{1,8}`,
    /// `[a-zA-Z ,.!]{0,80}`. Literal characters outside classes are copied
    /// through. Unsupported constructs panic with a clear message, so an
    /// unportable pattern fails loudly rather than silently degrading.
    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '[' => {
                    let (alphabet, next) = parse_class(&chars, i);
                    let (lo, hi, next) = parse_quantifier(&chars, next);
                    let n = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
                    for _ in 0..n {
                        out.push(alphabet[rng.gen_range(0..alphabet.len())]);
                    }
                    i = next;
                }
                '\\' if i + 1 < chars.len() => {
                    out.push(chars[i + 1]);
                    i += 2;
                }
                c @ ('.' | '*' | '+' | '?' | '(' | ')' | '|') => {
                    panic!("proptest stub: unsupported regex construct {c:?} in {pattern:?}")
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }

    /// Parse `[...]` starting at `start` (which must index `[`); returns the
    /// expanded alphabet and the index just past `]`.
    fn parse_class(chars: &[char], start: usize) -> (Vec<char>, usize) {
        let mut alphabet = Vec::new();
        let mut i = start + 1;
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '\\' && i + 1 < chars.len() {
                alphabet.push(chars[i + 1]);
                i += 2;
            } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "proptest stub: bad class range {lo}-{hi}");
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "proptest stub: unterminated character class");
        assert!(!alphabet.is_empty(), "proptest stub: empty character class");
        (alphabet, i + 1)
    }

    /// Parse an optional `{n}` / `{min,max}` quantifier at `start`; returns
    /// `(min, max, next_index)`. No quantifier means exactly one repetition.
    fn parse_quantifier(chars: &[char], start: usize) -> (usize, usize, usize) {
        if start >= chars.len() || chars[start] != '{' {
            return (1, 1, start);
        }
        let close = chars[start..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| start + p)
            .expect("proptest stub: unterminated quantifier");
        let body: String = chars[start + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("quantifier min"),
                hi.trim().parse().expect("quantifier max"),
            ),
            None => {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        };
        (lo, hi, close + 1)
    }
}

pub mod test_runner {
    //! Configuration and failure plumbing used by the [`crate::proptest!`]
    //! macro expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// How many cases each property runs, and (for API compatibility) any
    /// other knobs tests set via `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test RNG: seeded from the test's name so every run
    /// (and every CI machine) generates the same cases.
    pub fn seeded_rng(test_name: &str) -> StdRng {
        let mut seed: u64 = 0xcbf29ce484222325; // FNV-1a
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(seed)
    }
}

pub mod prelude {
    //! Glob-import surface matching `use proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` random inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::seeded_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Property-test assertion; returns a failure (rather than panicking) so
/// the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                left, right, format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`: {}",
                left, format!($($fmt)+),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::seeded_rng;

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = seeded_rng("range");
        for _ in 0..1000 {
            let v = (0u32..40).new_value(&mut rng);
            assert!(v < 40);
            let f = (-1e6f64..1e6).new_value(&mut rng);
            assert!((-1e6..1e6).contains(&f));
        }
    }

    #[test]
    fn string_strategy_matches_class() {
        let mut rng = seeded_rng("string");
        for _ in 0..500 {
            let s = "[a-z]{1,8}".new_value(&mut rng);
            assert!((1..=8).contains(&s.len()), "bad len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z ,.!]{0,80}".new_value(&mut rng);
            assert!(t.len() <= 80);
            assert!(t.chars().all(|c| c.is_ascii_alphabetic() || " ,.!".contains(c)));
        }
    }

    #[test]
    fn collection_strategies() {
        let mut rng = seeded_rng("coll");
        for _ in 0..200 {
            let v = crate::collection::vec(0i64..100, 1..40).new_value(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..100).contains(&x)));
            let hs = crate::collection::hash_set(0u32..50, 0..30).new_value(&mut rng);
            assert!(hs.len() < 30);
            let nested = crate::collection::vec(crate::collection::vec("[a-z]{1,6}", 0..12), 1..20)
                .new_value(&mut rng);
            assert!(!nested.is_empty());
        }
    }

    #[test]
    fn tuple_strategy() {
        let mut rng = seeded_rng("tuple");
        let (x, y) = (0i64..100, 0i64..100).new_value(&mut rng);
        assert!((0..100).contains(&x) && (0..100).contains(&y));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = seeded_rng("same");
        let mut b = seeded_rng("same");
        for _ in 0..50 {
            assert_eq!((0u32..1000).new_value(&mut a), (0u32..1000).new_value(&mut b));
        }
    }

    // the macro itself, exercised end to end
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(
            mut xs in crate::collection::vec(0i64..50, 0..20),
            y in 0i64..50,
        ) {
            xs.push(y);
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(xs.last().copied(), Some(y));
            prop_assert_ne!(xs.len(), 0, "length {}", xs.len());
        }
    }
}
