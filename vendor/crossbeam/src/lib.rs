//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] module subset that Mirror's daemon layer uses:
//! multi-producer multi-consumer channels with a *single* `Sender` /
//! `Receiver` type pair shared by [`channel::bounded`] and
//! [`channel::unbounded`] (unlike `std::sync::mpsc`, whose sync and async
//! sender types differ — the bus embeds reply senders inside messages, so
//! the types must unify). Built on `Mutex` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    fn pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Create an unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        pair(None)
    }

    /// Create a bounded channel with capacity `cap`; sends block while the
    /// queue is full and at least one receiver is alive.
    ///
    /// Divergence from real crossbeam: `bounded(0)` is promoted to
    /// capacity 1 instead of creating a rendezvous channel (a zero-capacity
    /// send here completes as soon as a slot frees rather than blocking
    /// until a receiver is mid-`recv`). No Mirror call site relies on
    /// rendezvous semantics; revisit before swapping in the real crate.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        pair(Some(cap.max(1)))
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`]; the unsent message is
    /// handed back in both variants.
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity right now.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(msg) | TrySendError::Disconnected(msg) => msg,
            }
        }

        /// True when the send failed because the channel was full (as
        /// opposed to disconnected).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; clonable, shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full. Fails
        /// (returning the message) once every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking: fails with [`TrySendError::Full`] when a
        /// bounded channel is at capacity instead of waiting for a slot —
        /// the primitive admission control is built on.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// True when every receiver has been dropped.
        pub fn is_disconnected(&self) -> bool {
            self.shared.state.lock().unwrap().receivers == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half; clonable (crossbeam channels are MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one arrives or every sender is
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline of `timeout` from now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.shared.not_empty.wait_timeout(state, deadline - now).unwrap();
                state = guard;
            }
        }

        /// Blocking iterator over received messages; ends when the channel
        /// disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // unblock senders parked on a full bounded queue
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
        assert!(tx.is_disconnected());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<i32>();
        let err = rx.recv_timeout(Duration::from_millis(20));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn bounded_blocks_until_consumed() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(t.join().unwrap());
    }

    #[test]
    fn try_send_rejects_instead_of_blocking() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        let err = tx.try_send(2).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        let err = tx.try_send(4).unwrap_err();
        assert!(!err.is_full());
        assert_eq!(err.into_inner(), 4);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got.len(), 100);
    }
}
