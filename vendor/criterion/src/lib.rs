//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the API slice the E1–E8 benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock harness: each
//! benchmark is warmed up once, then timed over `sample_size` samples and
//! reported as min / median / max per iteration. Statistical machinery
//! (outlier analysis, HTML reports) is intentionally absent; the harness
//! exists so `cargo bench` runs and `cargo bench --no-run` gates compilation
//! in CI.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group, e.g. `flattened/20000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    n_samples: usize,
    test_mode: bool,
}

impl Bencher {
    /// Run the routine repeatedly, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm-up / correctness pass (the only pass in --test mode)
        black_box(routine());
        if self.test_mode {
            return;
        }
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    /// Per-group override; like real criterion, it does not leak into
    /// later groups of the same binary.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Override the per-benchmark measurement budget (accepted for API
    /// compatibility; the stub times a fixed number of samples instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let samples = self.sample_size;
        self.criterion.run_one(&full, samples, |b| f(b));
        self
    }

    /// Benchmark a routine parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let samples = self.sample_size;
        self.criterion.run_one(&full, samples, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

/// The benchmark manager created by [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, test_mode: false, filter: None }
    }
}

impl Criterion {
    /// Apply harness CLI arguments (`--test` runs every routine once;
    /// `--bench` and criterion-style flags are accepted and ignored; a bare
    /// token filters benchmarks by substring).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" | "--noplot" => {}
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = v;
                    }
                }
                s if s.starts_with("--") => {
                    // unknown long flag: also consume its value-shaped
                    // follower, so it is not mistaken for a name filter
                    if args.peek().is_some_and(|next| !next.starts_with('-')) {
                        args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Explicitly set the number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.to_string(), criterion: self, sample_size }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        let samples = self.sample_size;
        self.run_one(&full, samples, |b| f(b));
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, full_id: &str, samples: usize, f: F) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            n_samples: samples,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {full_id} ... ok");
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{full_id:<48} (no samples)");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{full_id:<48} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }

    /// Printed once by [`criterion_main!`] after all groups run.
    pub fn final_summary() {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion { sample_size: 3, test_mode: false, filter: None };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("p", 7), &7, |b, &x| b.iter(|| black_box(x)));
            g.finish();
        }
        // 1 warm-up + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn group_sample_size_does_not_leak_to_later_groups() {
        let mut c = Criterion { sample_size: 2, test_mode: false, filter: None };
        let mut first = 0u64;
        {
            let mut g = c.benchmark_group("a");
            g.sample_size(5);
            g.bench_function("f", |b| b.iter(|| first += 1));
            g.finish();
        }
        assert_eq!(first, 6); // warm-up + 5 samples
        let mut second = 0u64;
        {
            let mut g = c.benchmark_group("b");
            g.bench_function("f", |b| b.iter(|| second += 1));
            g.finish();
        }
        assert_eq!(second, 3); // warm-up + the default 2 samples, not 5
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { sample_size: 10, test_mode: true, filter: None };
        let mut ran = 0u64;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { sample_size: 2, test_mode: false, filter: Some("match".into()) };
        let mut ran = 0u64;
        c.bench_function("no_hit", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
        c.bench_function("does_match", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("flattened", 20_000).to_string(), "flattened/20000");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
