//! Quickstart: build the paper's `TraditionalImgLib` (Section 3) by hand
//! and run the ranking query exactly as printed in the paper.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mirror::moa::{parse_define, Env, MoaEngine, MoaVal};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fresh logical environment with the CONTREP structure registered —
    // this is "the Mirror DBMS" at its smallest.
    let env = Env::new();
    mirror::ir::register_contrep(&env);

    // The schema, verbatim from Section 3 of the paper.
    let (name, ty) = parse_define(
        "define TraditionalImgLib as
           SET<
             TUPLE<
               Atomic<URL>: source,
               CONTREP<Text>: annotation
           >>;",
    )?;
    println!("defined {name} as {ty}\n");

    // A tiny manually-annotated image library.
    let annotations = [
        "a glowing sunset over the beach",
        "dark forest with morning mist",
        "sunset behind the city skyline",
        "waves rolling onto the beach at dusk",
        "snow covered mountain peak",
    ];
    let rows: Vec<MoaVal> = annotations
        .iter()
        .enumerate()
        .map(|(i, ann)| {
            MoaVal::Tuple(vec![
                MoaVal::Str(format!("http://img.example/{i}.png")),
                MoaVal::str(*ann),
            ])
        })
        .collect();
    let env = Arc::new(env);
    env.create_collection(name, ty, rows)?;

    // Flattening registered one BAT per column plus the inverted-index
    // BATs of the CONTREP attribute:
    println!("catalog after flattening:");
    for bat in env.catalog().names() {
        println!("  {bat}");
    }

    // "query refers to a set of query terms"
    env.bind_query("query", vec![("sunset".into(), 1.0), ("beach".into(), 1.0)]);

    // The ranking query of Section 3, verbatim.
    let engine = MoaEngine::new(Arc::clone(&env));
    let ranking = engine.query(
        "map[sum(THIS)] (
           map[getBL(THIS.annotation, query, stats)] ( TraditionalImgLib ));",
    )?;

    println!("\nbeliefs for query {{sunset, beach}}:");
    let mut pairs = ranking.pairs().unwrap().to_vec();
    pairs.sort_by(|a, b| b.1.as_float().unwrap().total_cmp(&a.1.as_float().unwrap()));
    for (oid, belief) in &pairs {
        println!(
            "  doc {oid}  belief {:.4}   {}",
            belief.as_float().unwrap(),
            annotations[*oid as usize]
        );
    }

    // The physical plan the query flattens to:
    println!("\nEXPLAIN:");
    println!(
        "{}",
        engine.explain(
            "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](TraditionalImgLib))"
        )?
    );
    Ok(())
}
