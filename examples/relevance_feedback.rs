//! Relevance feedback across query sessions (end of Section 5.2).
//!
//! The user queries, marks the relevant images among the top results, and
//! the system expands both channels of the query from the judged
//! documents. Precision improves (or holds) across iterations.
//!
//! ```sh
//! cargo run --release --example relevance_feedback
//! ```

use mirror::core::eval::precision_at_k;
use mirror::core::feedback::{FeedbackParams, FeedbackQuery};
use mirror::core::{MirrorConfig, MirrorDbms, Retriever};
use mirror::media::{RobotConfig, WebRobot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let robot = WebRobot::new(RobotConfig {
        n_images: 90,
        image_size: 28,
        unannotated_fraction: 0.3,
        seed: 31,
    });
    let corpus = robot.crawl();
    let mut db = MirrorDbms::new(MirrorConfig::default());
    db.ingest(&corpus)?;

    const K: usize = 10;
    let target_theme = 1; // "forest"
    let theme_name = robot.themes()[target_theme].name;
    let is_relevant = |oid: u32| db.docs()[oid as usize].theme == target_theme;

    println!("target theme: {theme_name}; initial query: \"forest\"\n");
    let mut query = FeedbackQuery::from_text("forest");
    let mut results = db.run_feedback_query(&query, 0.5, K)?;

    for round in 0..4 {
        let oids: Vec<_> = results.iter().map(|r| r.oid).collect();
        let p = precision_at_k(&oids, is_relevant, K);
        println!(
            "round {round}: precision@{K} = {p:.3}  (query: {} text terms, {} visual terms)",
            query.text.len(),
            query.visual.len()
        );
        for r in results.iter().take(3) {
            println!("    {:.4} {} {}", r.score, r.url, if is_relevant(r.oid) { "✓" } else { "✗" });
        }
        // the user marks the true positives of this round
        let relevant: Vec<_> = results.iter().map(|r| r.oid).filter(|&o| is_relevant(o)).collect();
        if relevant.is_empty() {
            println!("    no relevant results to feed back; stopping");
            break;
        }
        let (new_results, improved) =
            db.query_with_feedback(&query, &relevant, FeedbackParams::default(), 0.5, K)?;
        results = new_results;
        query = improved;
    }

    let final_p =
        precision_at_k(&results.iter().map(|r| r.oid).collect::<Vec<_>>(), is_relevant, K);
    println!("\nfinal precision@{K}: {final_p:.3}");
    println!(
        "expanded text terms: {:?}",
        query.text.iter().map(|(t, w)| format!("{t}:{w:.2}")).collect::<Vec<_>>()
    );
    println!(
        "expanded visual terms: {:?}",
        query.visual.iter().take(6).map(|(t, w)| format!("{t}:{w:.2}")).collect::<Vec<_>>()
    );
    Ok(())
}
