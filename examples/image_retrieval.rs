//! The demo application of Section 5: content-based image retrieval with
//! dual coding.
//!
//! A simulated web robot crawls a themed image library (some images
//! annotated, some not); the full ingest pipeline segments the images,
//! extracts two colour and four texture feature spaces, clusters each
//! space AutoClass-style into visual terms, builds
//! `ImageLibraryInternal(source, CONTREP<Text>, CONTREP<Image>)`, and
//! mines the association thesaurus. The user then issues a *textual*
//! query that retrieves *un-annotated* images through the visual channel.
//!
//! ```sh
//! cargo run --release --example image_retrieval
//! ```

use mirror::core::{MirrorConfig, MirrorDbms, Retriever};
use mirror::media::{RobotConfig, WebRobot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let robot = WebRobot::new(RobotConfig {
        n_images: 80,
        image_size: 32,
        unannotated_fraction: 0.35,
        seed: 2024,
    });
    let corpus = robot.crawl();
    let themes = robot.themes();
    println!(
        "crawled {} images ({} un-annotated)",
        corpus.len(),
        corpus.iter().filter(|c| c.annotation.is_none()).count()
    );

    let mut db = MirrorDbms::new(MirrorConfig::default());
    db.ingest(&corpus)?;

    let vocab = db.vocabulary().unwrap();
    println!("\nvisual vocabularies (AutoClass-selected sizes):");
    for space in vocab.spaces() {
        println!("  {space:<8} {} clusters", vocab.model(&space).unwrap().n_clusters());
    }

    let th = db.thesaurus().unwrap();
    println!("\nthesaurus: {} text terms associated with visual terms", th.n_terms());
    for term in ["sunset", "forest", "ocean"] {
        let assoc = th.associations(term);
        let head: Vec<String> =
            assoc.iter().take(3).map(|(v, s)| format!("{v} ({s:.3})")).collect();
        println!("  {term:<8} → {}", head.join(", "));
    }

    // ---- querying, Section 5.2 ----
    let query = "sunset glow over the horizon";
    println!("\nuser query: {query:?}\n");

    let text_only = db.query_text(query, 8)?;
    println!("text-only retrieval (annotation channel):");
    for r in &text_only {
        let d = &db.docs()[r.oid as usize];
        println!(
            "  {:.4}  {:<42} theme={} annotated={}",
            r.score, r.url, themes[d.theme].name, d.annotated
        );
    }

    let dual = db.query_dual(query, 0.5, 8)?;
    println!("\ndual-coded retrieval (text + thesaurus-expanded visual):");
    for r in &dual {
        let d = &db.docs()[r.oid as usize];
        println!(
            "  {:.4}  {:<42} theme={} annotated={}",
            r.score, r.url, themes[d.theme].name, d.annotated
        );
    }

    let found_unannotated = dual.iter().filter(|r| !db.docs()[r.oid as usize].annotated).count();
    println!(
        "\nun-annotated images surfaced by dual coding: {found_unannotated} \
         (text-only can never reach them: {})",
        text_only.iter().filter(|r| !db.docs()[r.oid as usize].annotated).count()
    );

    // precision against the simulator's ground truth
    let p_text = mirror::core::eval::precision_at_k(
        &text_only.iter().map(|r| r.oid).collect::<Vec<_>>(),
        |o| db.docs()[o as usize].theme == 0,
        8,
    );
    let p_dual = mirror::core::eval::precision_at_k(
        &dual.iter().map(|r| r.oid).collect::<Vec<_>>(),
        |o| db.docs()[o as usize].theme == 0,
        8,
    );
    println!("\nprecision@8 (sunset theme): text-only {p_text:.3}, dual {p_dual:.3}");
    Ok(())
}
