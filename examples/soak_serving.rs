//! Soak the serving tier: open-loop mixed traffic plus live writes.
//!
//! The WebRobot keeps feeding documents while users query — the paper's
//! operating condition. This demo stands up a [`LiveMirror`] behind a
//! bounded-queue [`MirrorServer`], drives it with the seeded open-loop
//! workload generator (text / dual / filtered / feedback traffic at a
//! fixed arrival rate, write batches interleaved), lets the merge policy
//! auto-fold the delta, and prints whole-run p50/p99 with SLO headroom.
//! Overload is exercised on purpose at the end: a second run at an
//! arrival rate far beyond capacity must shed load with typed
//! `Overloaded` rejections instead of melting down.
//!
//! ```sh
//! cargo run --release --example soak_serving
//! ```

use mirror::core::serve::MirrorServer;
use mirror::core::workload::{TrafficMix, WorkloadConfig, WorkloadGen};
use mirror::core::{LiveMirror, MergePolicy, MirrorDbms};
use mirror::media::{RobotConfig, WebRobot};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- batch-ingest a corpus; keep the tail as the live insert pool ----
    let corpus = WebRobot::new(RobotConfig {
        n_images: 48,
        image_size: 24,
        unannotated_fraction: 0.25,
        seed: 17,
    })
    .crawl();
    let mut db = MirrorDbms::with_defaults();
    db.ingest(&corpus)?;
    let rows = db.library_rows().to_vec();
    let seed_rows = rows[..32].to_vec();
    let insert_pool = rows[32..].to_vec();
    let vocab = db.vocabulary().cloned();
    let thes = db.thesaurus().cloned();
    let visual_pool: Vec<String> = rows
        .iter()
        .find(|r| !r.vterms.is_empty())
        .map(|r| r.vterms.split_whitespace().take(3).map(String::from).collect())
        .unwrap_or_default();

    let live = Arc::new(LiveMirror::new(MirrorDbms::from_rows(
        db.config().clone(),
        seed_rows,
        vocab,
        thes,
    )?));
    let server = MirrorServer::start_with_queue(Arc::clone(&live), 3, 256);

    // ---- soak: mixed traffic at a sustainable arrival rate + writes ----
    let cfg = WorkloadConfig {
        seed: 29,
        qps: 150.0,
        requests: 300,
        k: 10,
        mix: TrafficMix::default(),
        slo_ms: 50.0,
        write_every: 25,
        write_batch: 2,
        ..Default::default()
    };
    let mut generator = WorkloadGen::new(
        cfg,
        ["sunset", "ocean", "forest", "city", "desert", "snow", "glow", "wave"]
            .map(String::from)
            .to_vec(),
    )
    .with_filters(vec!["/sunset/".into(), "/ocean/".into()])
    .with_visual_terms(visual_pool);
    let report = generator.run_with_writes(&server, &insert_pool);
    println!("soak @ sustainable rate:\n  {}", report.summary());
    println!("  {} live-write batches interleaved", report.writes);

    // the merge policy folds the accumulated delta automatically
    let policy = MergePolicy { max_delta_rows: 4, ..MergePolicy::default() };
    let merged = live.maybe_merge(&policy)?;
    let gens = live.generation_stats();
    println!("  merge policy fired: {merged} (generation {}, {} alive)", gens.current, gens.alive);

    // the soak gate: no server-side errors, every offer accounted for
    assert_eq!(report.errors, 0, "soak saw server-side errors");
    assert_eq!(report.offered, report.completed + report.rejected + report.errors);
    assert!(report.writes > 0, "soak interleaved no writes");

    // ---- overdrive: far beyond capacity, the queue must shed, not melt ----
    let overdrive = Arc::new(MirrorServer::start_with_queue(Arc::clone(&live), 1, 8));
    let mut hot = WorkloadGen::new(
        WorkloadConfig {
            seed: 31,
            qps: 50_000.0,
            requests: 400,
            slo_ms: 50.0,
            mix: TrafficMix { text: 1.0, dual: 0.0, filtered: 0.0, feedback: 0.0 },
            ..Default::default()
        },
        ["sunset", "ocean", "forest"].map(String::from).to_vec(),
    );
    let hot_report = hot.run(&overdrive);
    println!("overdrive @ 50k qps into a depth-8 queue:\n  {}", hot_report.summary());
    assert_eq!(hot_report.errors, 0, "overload must shed, not error");
    assert_eq!(hot_report.offered, hot_report.completed + hot_report.rejected);
    println!(
        "  admission control shed {} of {} offers as typed Overloaded",
        hot_report.rejected, hot_report.offered
    );
    Ok(())
}
