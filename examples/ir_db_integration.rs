//! "Efficient integration of information and data retrieval": combine
//! relational selection with probabilistic ranking in single Moa queries,
//! and inspect what the optimizer does to them.
//!
//! ```sh
//! cargo run --example ir_db_integration
//! ```

use mirror::core::{MirrorConfig, MirrorDbms};
use mirror::media::{RobotConfig, WebRobot};
use mirror::moa::{parse_expr, OptConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = WebRobot::new(RobotConfig {
        n_images: 60,
        image_size: 24,
        unannotated_fraction: 0.2,
        seed: 9,
    })
    .crawl();
    let mut db = MirrorDbms::new(MirrorConfig::default());
    db.ingest(&corpus)?;

    db.env().bind_query("query", vec![("sunset".into(), 1.0), ("glow".into(), 1.0)]);

    // 1. content + structure in one expression: rank only ocean images
    let combined = "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](
                      select[contains(THIS.source, \"/sunset/\")](ImageLibraryInternal)))";
    println!("combined select ∘ rank query:\n  {combined}\n");
    let out = db.engine().query(combined)?;
    println!("ranked {} surviving documents\n", out.len());

    // 2. the same query written select-after-map: the rewriter pushes the
    //    selection below the ranking so getBL only touches survivors
    let sloppy = "select[contains(THIS.source, \"/sunset/\")](
                    map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](ImageLibraryInternal)))";
    let engine_opt = db.engine();
    println!("optimized plan for the select-after-map formulation:");
    println!("{}", engine_opt.explain(sloppy)?);

    let raw_engine = mirror::moa::MoaEngine::with_opt(Arc::clone(db.env()), OptConfig::none());
    println!("unoptimized plan for the same query:");
    println!("{}", raw_engine.explain(sloppy)?);

    // 3. measure the difference
    let expr = parse_expr(sloppy)?;
    let t0 = std::time::Instant::now();
    let (opt_out, opt_stats) = engine_opt.query_with_stats(&expr)?;
    let t_opt = t0.elapsed();
    let t1 = std::time::Instant::now();
    let (raw_out, raw_stats) = raw_engine.query_with_stats(&expr)?;
    let t_raw = t1.elapsed();
    println!("optimized:   {} rows, {}", opt_out.len(), opt_stats.summary());
    println!("unoptimized: {} rows, {}", raw_out.len(), raw_stats.summary());
    println!(
        "wall time: optimized {t_opt:?} vs unoptimized {t_raw:?} \
         (rows produced: {} vs {})",
        opt_stats.rows_produced, raw_stats.rows_produced
    );

    // 4. arithmetic over two content channels in one expression
    db.env().bind_query("vq", vec![("rgb_0".into(), 1.0)]);
    let two_channel = "map[sum(getBL(THIS.annotation, query, stats)) * 0.7
                          + sum(getBL(THIS.image, vq, stats)) * 0.3](ImageLibraryInternal)";
    let both = db.engine().query(two_channel)?;
    println!("\ntwo-channel evidence combination returned {} beliefs", both.len());
    Ok(())
}
