//! Durable library: ingest once, then serve forever from disk.
//!
//! Ingest is the expensive half of the Mirror pipeline — segmentation,
//! feature extraction, clustering, thesaurus mining. The durable storage
//! tier saves its *output* (library rows, inverted indexes, vocabulary,
//! thesaurus) into WAL-protected, checksummed 4 KiB pages so a later
//! process cold-opens the instance in milliseconds and ranks
//! bit-identically — no pixels needed.
//!
//! ```sh
//! cargo run --release --example durable_library
//! ```

use mirror::core::{MirrorDbms, Retriever};
use mirror::media::{RobotConfig, WebRobot};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("mirror-durable-demo-{}", std::process::id()));

    // --- process 1: crawl, ingest, save -------------------------------
    let corpus = WebRobot::new(RobotConfig { n_images: 64, ..Default::default() }).crawl();
    let t = Instant::now();
    let mut db = MirrorDbms::with_defaults();
    db.ingest(&corpus)?;
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
    let live = db.query_text("sunset over the beach", 5)?;
    db.save(&dir)?;
    println!("ingested {} images in {ingest_ms:.0} ms and saved to {}", db.n_docs(), dir.display());

    // --- process 2 (simulated): cold open, no corpus in sight ---------
    drop(db);
    let t = Instant::now();
    let db = MirrorDbms::open(&dir)?;
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "cold-opened {} docs in {open_ms:.2} ms ({:.0}× faster than ingest)\n",
        db.n_docs(),
        ingest_ms / open_ms.max(1e-6)
    );

    let reopened = db.query_text("sunset over the beach", 5)?;
    assert_eq!(live, reopened, "a reopened instance must rank bit-identically");
    println!("top-5 for \"sunset over the beach\" (bit-identical to the saved instance):");
    for hit in &reopened {
        println!("  {:.4}  {}", hit.score, hit.url);
    }

    // dual-coded retrieval works too: the association thesaurus came back
    // from disk with the instance
    let dual = db.query_dual("forest", 0.5, 3)?;
    println!("\ntop-3 dual-coded for \"forest\":");
    for hit in &dual {
        println!("  {:.4}  {}", hit.score, hit.url);
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
