//! The open distributed architecture of Figure 1, live.
//!
//! Daemons (segmenter, six feature extractors, media server) run on their
//! own threads and communicate over the bus; the metadata database
//! collects their output. A new feature daemon is attached *while the
//! system is running* — the extensibility the paper claims for the
//! daemon model.
//!
//! ```sh
//! cargo run --example distributed_library
//! ```

use mirror::core::{MirrorConfig, MirrorDbms};
use mirror::daemon::{
    mediaserver::fetch_media, DaemonRuntime, FeatureDaemon, MediaServer, Message, SegmenterDaemon,
    SegmenterKind, TOPIC_CRAWLED, TOPIC_MEDIA,
};
use mirror::media::{standard_extractors, FeatureExtractor, Image, RobotConfig, WebRobot};
use std::time::Duration;

/// A later-added daemon: mean-luminance, attached at run time.
struct LumaExtractor;

impl FeatureExtractor for LumaExtractor {
    fn space(&self) -> &'static str {
        "luma"
    }
    fn dims(&self) -> usize {
        1
    }
    fn extract(&self, image: &Image) -> mirror::media::FeatureVector {
        let mut acc = 0.0;
        for y in 0..image.height() {
            for x in 0..image.width() {
                acc += image.luma(x, y);
            }
        }
        let n = (image.width() * image.height()).max(1) as f64;
        mirror::media::FeatureVector::new(vec![acc / n])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = WebRobot::new(RobotConfig {
        n_images: 30,
        image_size: 24,
        unannotated_fraction: 0.3,
        seed: 5,
    })
    .crawl();

    // ---- stand up the daemons of Figure 1 ----
    let rt = DaemonRuntime::new();
    let features = rt.bus().subscribe(mirror::daemon::TOPIC_FEATURES);
    rt.spawn(Box::new(MediaServer::new()));
    rt.spawn(Box::new(SegmenterDaemon::new(SegmenterKind::Grid(3))));
    for ex in standard_extractors() {
        rt.spawn(Box::new(FeatureDaemon::new(ex)));
    }
    println!("daemons online: {:?}", rt.daemon_names());

    // ---- the web robot publishes the footage ----
    for c in &corpus {
        rt.bus().publish(
            TOPIC_MEDIA,
            "web-robot",
            Message::StoreMedia { url: c.url.clone(), blob: c.image.to_blob() },
        );
        rt.bus().publish(
            TOPIC_CRAWLED,
            "web-robot",
            Message::ImageCrawled {
                url: c.url.clone(),
                blob: c.image.to_blob(),
                annotation: c.annotation.clone(),
            },
        );
    }

    // attach one more daemon while messages are in flight
    rt.spawn(Box::new(FeatureDaemon::new(Box::new(LumaExtractor))));
    println!("attached 'feature-luma' at run time");

    rt.wait_quiescent(Duration::from_millis(20), 5);
    let counts = rt.processed_counts();
    println!("\nmessages processed per daemon:");
    let mut names: Vec<_> = counts.keys().collect();
    names.sort();
    for n in names {
        println!("  {n:<16} {}", counts[n]);
    }

    // collect feature messages like the metadata database would
    let mut n_features = 0usize;
    let mut luma_features = 0usize;
    while let Ok(env) = features.try_recv() {
        if let Message::FeaturesExtracted { space, .. } = env.msg {
            n_features += 1;
            if space == "luma" {
                luma_features += 1;
            }
        }
    }
    println!(
        "\nfeature vectors collected: {n_features} (of which {luma_features} from the late daemon)"
    );

    // the media server answers fetches (the demo's image display path)
    let blob = fetch_media(rt.bus(), &corpus[0].url, Duration::from_secs(2))
        .expect("media server should hold the footage");
    let img = Image::from_blob(&blob).unwrap();
    println!("media server served {} ({}×{})", corpus[0].url, img.width(), img.height());
    rt.shutdown();

    // ---- the same pipeline drives a full ingest, for comparison ----
    let mut db = MirrorDbms::new(MirrorConfig::default());
    db.ingest_via_daemons(&corpus)?;
    println!(
        "\ningest-via-daemons produced an internal library of {} documents, \
         visual vocabulary of {} terms",
        db.n_docs(),
        db.vocabulary().unwrap().total_terms()
    );
    Ok(())
}
