//! The open distributed architecture of Figure 1, live.
//!
//! Daemons (segmenter, six feature extractors, media server) run on their
//! own threads and communicate over the bus; the metadata database
//! collects their output. A new feature daemon is attached *while the
//! system is running* — the extensibility the paper claims for the
//! daemon model.
//!
//! The second half serves the same library from a sharded cluster: the
//! corpus is partitioned across `MirrorDbms` shards with replicated
//! routing, queries scatter-gather through the `Retriever` trait, and a
//! replica is killed mid-demo to show failover.
//!
//! ```sh
//! cargo run --example distributed_library
//! ```

use mirror::core::serve::MirrorServer;
use mirror::core::shard::MirrorCluster;
use mirror::core::{MirrorConfig, MirrorDbms, Retriever};
use mirror::daemon::{
    mediaserver::fetch_media, DaemonRuntime, FeatureDaemon, MediaServer, Message, SegmenterDaemon,
    SegmenterKind, TOPIC_CRAWLED, TOPIC_MEDIA,
};
use mirror::media::{standard_extractors, FeatureExtractor, Image, RobotConfig, WebRobot};
use std::time::Duration;

/// A later-added daemon: mean-luminance, attached at run time.
struct LumaExtractor;

impl FeatureExtractor for LumaExtractor {
    fn space(&self) -> &'static str {
        "luma"
    }
    fn dims(&self) -> usize {
        1
    }
    fn extract(&self, image: &Image) -> mirror::media::FeatureVector {
        let mut acc = 0.0;
        for y in 0..image.height() {
            for x in 0..image.width() {
                acc += image.luma(x, y);
            }
        }
        let n = (image.width() * image.height()).max(1) as f64;
        mirror::media::FeatureVector::new(vec![acc / n])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = WebRobot::new(RobotConfig {
        n_images: 30,
        image_size: 24,
        unannotated_fraction: 0.3,
        seed: 5,
    })
    .crawl();

    // ---- stand up the daemons of Figure 1 ----
    let rt = DaemonRuntime::new();
    let features = rt.bus().subscribe(mirror::daemon::TOPIC_FEATURES);
    rt.spawn(Box::new(MediaServer::new()));
    rt.spawn(Box::new(SegmenterDaemon::new(SegmenterKind::Grid(3))));
    for ex in standard_extractors() {
        rt.spawn(Box::new(FeatureDaemon::new(ex)));
    }
    println!("daemons online: {:?}", rt.daemon_names());

    // ---- the web robot publishes the footage ----
    for c in &corpus {
        rt.bus().publish(
            TOPIC_MEDIA,
            "web-robot",
            Message::StoreMedia { url: c.url.clone(), blob: c.image.to_blob() },
        );
        rt.bus().publish(
            TOPIC_CRAWLED,
            "web-robot",
            Message::ImageCrawled {
                url: c.url.clone(),
                blob: c.image.to_blob(),
                annotation: c.annotation.clone(),
            },
        );
    }

    // attach one more daemon while messages are in flight
    rt.spawn(Box::new(FeatureDaemon::new(Box::new(LumaExtractor))));
    println!("attached 'feature-luma' at run time");

    rt.wait_quiescent(Duration::from_millis(20), 5);
    let counts = rt.processed_counts();
    println!("\nmessages processed per daemon:");
    let mut names: Vec<_> = counts.keys().collect();
    names.sort();
    for n in names {
        println!("  {n:<16} {}", counts[n]);
    }

    // collect feature messages like the metadata database would
    let mut n_features = 0usize;
    let mut luma_features = 0usize;
    while let Ok(env) = features.try_recv() {
        if let Message::FeaturesExtracted { space, .. } = env.msg {
            n_features += 1;
            if space == "luma" {
                luma_features += 1;
            }
        }
    }
    println!(
        "\nfeature vectors collected: {n_features} (of which {luma_features} from the late daemon)"
    );

    // the media server answers fetches (the demo's image display path)
    let blob = fetch_media(rt.bus(), &corpus[0].url, Duration::from_secs(2))
        .expect("media server should hold the footage");
    let img = Image::from_blob(&blob).unwrap();
    println!("media server served {} ({}×{})", corpus[0].url, img.width(), img.height());
    rt.shutdown();

    // ---- the same pipeline drives a full ingest, for comparison ----
    let mut db = MirrorDbms::new(MirrorConfig::default());
    db.ingest_via_daemons(&corpus)?;
    println!(
        "\ningest-via-daemons produced an internal library of {} documents, \
         visual vocabulary of {} terms",
        db.n_docs(),
        db.vocabulary().unwrap().total_terms()
    );

    // ---- scale out: the same library sharded with replicated routing ----
    let cluster = MirrorCluster::build(&corpus, 2, 2)?;
    let stats = cluster.stats();
    println!(
        "\ncluster online: {} shards × {} replicas, docs per shard {:?}",
        stats.shards, stats.replicas_per_shard, stats.docs_per_shard
    );

    let single = db.query_text("sunset glow", 5)?;
    let gathered = cluster.query_text("sunset glow", 5)?;
    println!("scatter-gather top-5 (bit-identical to one node: {}):", single == gathered);
    for r in &gathered {
        println!("  {:.4}  {}", r.score, r.url);
    }

    // kill a replica of every shard: the router fails over and the
    // complete top-k survives
    for shard in 0..cluster.n_shards() {
        cluster.kill_replica(shard, 0);
    }
    let after = cluster.query_text("sunset glow", 5)?;
    println!(
        "with replica 0 of every shard down, results unchanged: {} \
         (healthy replicas per shard: {:?})",
        after == gathered,
        cluster.stats().healthy_per_shard
    );

    // the concurrent server runs unchanged against the cluster backend
    let server = MirrorServer::start(std::sync::Arc::new(cluster), 4);
    let pending: Vec<_> = ["sunset glow", "forest moss", "ocean wave"]
        .iter()
        .map(|q| server.submit(mirror::core::serve::RetrievalRequest::text(q, 3)))
        .collect();
    for p in pending {
        p.wait()?;
    }
    let st = server.stats();
    println!(
        "server over the cluster answered {} requests (p50 {:.2} ms, p99 {:.2} ms)",
        st.served, st.p50_latency_ms, st.p99_latency_ms
    );
    Ok(())
}
